"""Tests for architecture specifications."""

import numpy as np
import pytest

from repro.models.spec import (
    ArchitectureSpec,
    ConvSpec,
    DropoutSpec,
    FlattenSpec,
    LinearSpec,
    PoolSpec,
)
from repro.models.zoo import lenet5, lenet_3c1l, mlp, tiny_cnn, vgg16


def simple_spec():
    return ArchitectureSpec(
        "simple",
        (3, 8, 8),
        2,
        (
            ConvSpec(4, kernel_size=3, padding=1),
            PoolSpec("max", 2),
            FlattenSpec(),
            LinearSpec(2, activation="none", is_output=True),
        ),
    )


class TestValidation:
    def test_requires_layers(self):
        with pytest.raises(ValueError):
            ArchitectureSpec("bad", (3, 8, 8), 2, ())

    def test_final_layer_must_be_output_linear(self):
        with pytest.raises(ValueError):
            ArchitectureSpec("bad", (3, 8, 8), 2, (ConvSpec(4),))

    def test_output_features_must_match_num_classes(self):
        with pytest.raises(ValueError):
            ArchitectureSpec(
                "bad", (3, 8, 8), 2,
                (FlattenSpec(), LinearSpec(3, activation="none", is_output=True)),
            )


class TestExpansion:
    def test_expand_scales_hidden_layers_only(self):
        spec = simple_spec()
        expanded = spec.expand(2.0)
        conv = expanded.layers[0]
        output = expanded.layers[-1]
        assert conv.out_channels == 8
        assert output.out_features == 2  # classifier untouched

    def test_expand_renames(self):
        assert "x1.5" in simple_spec().expand(1.5).name

    def test_expand_invalid_ratio(self):
        with pytest.raises(ValueError):
            simple_spec().expand(0.0)

    def test_width_multiplier_alias(self):
        assert simple_spec().with_width_multiplier(2.0).layers[0].out_channels == 8

    def test_expand_increases_macs_superlinearly(self):
        spec = lenet_3c1l(width_scale=0.5)
        base = spec.total_macs()
        doubled = spec.expand(2.0).total_macs()
        assert doubled > 2.5 * base  # conv MACs grow ~quadratically in width


class TestIntrospection:
    def test_hidden_unit_counts(self):
        spec = simple_spec()
        assert spec.hidden_unit_counts() == [4, 2]

    def test_parametric_layers(self):
        assert len(simple_spec().parametric_layers()) == 2

    def test_flattened_features(self):
        # conv keeps 8x8 (padding 1), pool halves to 4x4, 4 channels.
        assert simple_spec().flattened_features() == 4 * 4 * 4

    def test_spatial_trace(self):
        trace = simple_spec().spatial_trace()
        assert trace[0] == (8, 8)
        assert trace[1] == (4, 4)

    def test_describe_mentions_macs(self):
        assert "MACs" in simple_spec().describe()


class TestMacCounting:
    def test_manual_mac_count(self):
        spec = simple_spec()
        conv_macs = 4 * 3 * 3 * 3 * 8 * 8
        fc_macs = 2 * (4 * 4 * 4)
        assert spec.total_macs() == conv_macs + fc_macs

    def test_mlp_macs(self):
        spec = mlp(num_classes=3, input_dim=10, hidden=(8,))
        assert spec.total_macs() == 10 * 8 + 8 * 3

    def test_vgg16_macs_far_exceed_lenet(self):
        assert vgg16(width_scale=0.25).total_macs() > lenet_3c1l(width_scale=0.25).total_macs()


class TestZoo:
    def test_lenet_3c1l_structure(self):
        spec = lenet_3c1l()
        assert spec.name == "lenet-3c1l"
        assert len(spec.parametric_layers()) == 4  # 3 conv + 1 fc

    def test_lenet5_structure(self):
        spec = lenet5()
        conv_layers = [l for l in spec.parametric_layers() if isinstance(l, ConvSpec)]
        linear_layers = [l for l in spec.parametric_layers() if isinstance(l, LinearSpec)]
        assert len(conv_layers) == 2
        assert len(linear_layers) == 3

    def test_vgg16_has_sixteen_parametric_layers(self):
        assert len(vgg16().parametric_layers()) == 16  # 13 conv + 3 fc

    def test_width_scale_shrinks_channels(self):
        full = lenet_3c1l(width_scale=1.0)
        half = lenet_3c1l(width_scale=0.5)
        assert half.layers[0].out_channels == full.layers[0].out_channels // 2

    def test_tiny_cnn_small(self):
        assert tiny_cnn().total_macs() < lenet_3c1l().total_macs()

    def test_scaled_widths_never_drop_below_two(self):
        spec = lenet_3c1l(width_scale=0.01)
        assert min(spec.hidden_unit_counts()[:-1]) >= 2
