"""Tests for the model registry."""

import pytest

from repro.models import registry
from repro.models.spec import ArchitectureSpec


class TestRegistry:
    def test_paper_models_registered(self):
        available = registry.available_models()
        for name in ("lenet-3c1l", "lenet-5", "vgg-16"):
            assert name in available

    def test_get_model_spec_is_case_insensitive(self):
        spec = registry.get_model_spec("LeNet-3C1L", num_classes=10)
        assert isinstance(spec, ArchitectureSpec)
        assert spec.num_classes == 10

    def test_kwargs_forwarded(self):
        spec = registry.get_model_spec("mlp", num_classes=7, input_dim=5)
        assert spec.num_classes == 7
        assert spec.input_shape[0] == 5

    def test_unknown_model(self):
        with pytest.raises(KeyError, match="available"):
            registry.get_model_spec("resnet-152")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            registry.register_model("mlp", registry.zoo.mlp)

    def test_register_and_use_custom_model(self):
        name = "custom-test-model"
        if name not in registry.available_models():
            registry.register_model(name, lambda **kw: registry.zoo.mlp(**kw))
        spec = registry.get_model_spec(name, num_classes=3)
        assert spec.num_classes == 3
