"""Tests for the slimmable network baseline."""

import numpy as np
import pytest

from repro.baselines.slimmable import (
    SlimmableNetwork,
    SwitchableBatchNorm,
    build_slimmable_network,
    train_slimmable,
)
from repro.core.config import SteppingConfig, TrainingConfig
from repro.data import DataLoader
from repro.nn.tensor import Tensor, no_grad


@pytest.fixture
def budgets():
    return (0.3, 0.6, 0.95)


class TestSwitchableBatchNorm:
    def test_each_width_has_independent_statistics(self):
        norm = SwitchableBatchNorm(3, num_subnets=2, dims=2)
        x = Tensor(np.random.default_rng(0).standard_normal((8, 3, 4, 4)) + 5.0)
        active = np.array([True, True, True])
        norm.active_subnet = 0
        norm(x, active)
        norm.active_subnet = 1
        # Width 1's statistics were never updated by width 0's forward pass.
        assert norm.copies[1].running_mean.sum() == pytest.approx(0.0)
        assert norm.copies[0].running_mean.sum() != pytest.approx(0.0)

    def test_parameter_count_scales_with_subnets(self):
        assert len(list(SwitchableBatchNorm(3, 4).parameters())) == 8


class TestBuild:
    def test_structural_constraint_disabled(self, tiny_spec, budgets, rng):
        network = build_slimmable_network(tiny_spec, budgets, rng=rng)
        for layer in network.param_layers:
            assert not layer.enforce_incremental

    def test_norms_are_switchable(self, tiny_spec, budgets, rng):
        network = build_slimmable_network(tiny_spec, budgets, rng=rng)
        norm_blocks = [b for b in network.parametric_blocks() if b.norm is not None]
        assert norm_blocks
        assert all(isinstance(b.norm, SwitchableBatchNorm) for b in norm_blocks)

    def test_macs_within_budgets(self, tiny_spec, budgets, rng):
        network = build_slimmable_network(tiny_spec, budgets, rng=rng)
        reference = tiny_spec.total_macs()
        for subnet, budget in enumerate(budgets):
            assert network.subnet_macs(subnet, apply_prune=False) <= budget * reference * 1.02

    def test_smaller_width_output_changes_when_width_grows(self, tiny_spec, budgets, rng, image_batch):
        """The slimmable network has no reuse guarantee: a unit's inputs differ per width."""
        x, _ = image_batch
        network = build_slimmable_network(tiny_spec, budgets, rng=rng)
        network.eval()
        first_block = network.parametric_blocks()[1]  # second conv: inputs differ across widths
        with no_grad():
            _, cache_small = network.forward(x, subnet=0, return_cache=True)
            _, cache_large = network.forward(x, subnet=2, return_cache=True)
        idx = first_block.param_index
        active_small = first_block.layer.assignment.active_mask(0)
        small_vals = cache_small[idx][:, active_small]
        large_vals = cache_large[idx][:, active_small]
        assert not np.allclose(small_vals, large_vals)


class TestTrain:
    def test_training_produces_valid_result(self, tiny_spec, image_dataset):
        loader = DataLoader(image_dataset, batch_size=16, shuffle=True, seed=0)
        config = SteppingConfig(
            mac_budgets=(0.3, 0.6, 0.8, 0.95),
            num_iterations=1,
            training=TrainingConfig(learning_rate=0.05, batch_size=16),
        )
        result = train_slimmable(tiny_spec, loader, loader, config, epochs=2)
        assert len(result.subnet_accuracies) == 4
        assert all(0.0 <= a <= 1.0 for a in result.subnet_accuracies)
        assert isinstance(result.network, SlimmableNetwork)
