"""Tests for the any-width network baseline."""

import numpy as np
import pytest

from repro.baselines.any_width import build_any_width_network, train_any_width
from repro.core.config import SteppingConfig, TrainingConfig
from repro.core.incremental import IncrementalInference
from repro.data import DataLoader
from repro.nn.tensor import no_grad


@pytest.fixture
def budgets():
    return (0.3, 0.6, 0.95)


class TestBuild:
    def test_macs_within_budgets(self, tiny_spec, budgets, rng):
        network = build_any_width_network(tiny_spec, budgets, rng=rng)
        reference = tiny_spec.total_macs()
        for subnet, budget in enumerate(budgets):
            assert network.subnet_macs(subnet, apply_prune=False) <= budget * reference * 1.02

    def test_structural_constraint_enabled(self, tiny_spec, budgets, rng):
        network = build_any_width_network(tiny_spec, budgets, rng=rng)
        for layer in network.param_layers[:-1]:
            assert layer.enforce_incremental

    def test_prefix_pattern(self, tiny_spec, budgets, rng):
        network = build_any_width_network(tiny_spec, budgets, rng=rng)
        for block in network.parametric_blocks():
            if block.is_output:
                continue
            assert np.all(np.diff(block.layer.assignment.unit_subnet) >= 0)

    def test_incremental_reuse_is_exact(self, tiny_spec, budgets, rng, image_batch):
        """Any-width shares SteppingNet's reuse property (regular structure)."""
        network = build_any_width_network(tiny_spec, budgets, rng=rng)
        x, _ = image_batch
        engine = IncrementalInference(network)
        engine.run(x, subnet=0)
        stepped = engine.step_to(2)
        network.eval()
        with no_grad():
            direct = network.forward(x, subnet=2).data
        np.testing.assert_allclose(stepped.logits, direct, atol=1e-10)


class TestTrain:
    def test_training_produces_valid_result(self, tiny_spec, image_dataset):
        loader = DataLoader(image_dataset, batch_size=16, shuffle=True, seed=0)
        config = SteppingConfig(
            mac_budgets=(0.3, 0.6, 0.8, 0.95),
            num_iterations=1,
            batches_per_iteration=1,
            training=TrainingConfig(learning_rate=0.05, batch_size=16),
        )
        result = train_any_width(tiny_spec, loader, loader, config, epochs=2)
        assert len(result.subnet_accuracies) == 4
        assert len(result.mac_fractions) == 4
        assert all(0.0 <= a <= 1.0 for a in result.subnet_accuracies)
        assert all(f2 >= f1 for f1, f2 in zip(result.mac_fractions, result.mac_fractions[1:]))
        assert result.subnet_accuracies[-1] > 1.0 / 4 - 0.01  # at least near chance

    def test_width_fractions_reported_non_decreasing(self, tiny_spec, image_dataset):
        loader = DataLoader(image_dataset, batch_size=16, shuffle=True, seed=0)
        config = SteppingConfig(mac_budgets=(0.4, 0.7, 0.95), num_iterations=1)
        result = train_any_width(tiny_spec, loader, loader, config, epochs=1)
        assert all(b >= a for a, b in zip(result.width_fractions, result.width_fractions[1:]))
