"""Tests for the static width-multiplier baseline."""

import pytest

from repro.baselines.width_multiplier import (
    calibrate_multipliers,
    mac_fraction_for_multiplier,
    train_width_multiplier_family,
)
from repro.core.config import TrainingConfig
from repro.data import DataLoader
from repro.models import tiny_cnn


class TestCalibration:
    def test_mac_fraction_for_unit_multiplier(self):
        spec = tiny_cnn(input_shape=(3, 12, 12))
        assert mac_fraction_for_multiplier(spec, 1.0) == pytest.approx(1.0)

    def test_mac_fraction_grows_with_multiplier(self):
        spec = tiny_cnn(input_shape=(3, 12, 12))
        assert mac_fraction_for_multiplier(spec, 0.5) < mac_fraction_for_multiplier(spec, 1.0)

    def test_calibrated_multipliers_meet_budgets(self):
        spec = tiny_cnn(width_scale=2.0, input_shape=(3, 12, 12))
        budgets = [0.3, 0.6, 0.9]
        multipliers = calibrate_multipliers(spec, budgets)
        for multiplier, budget in zip(multipliers, budgets):
            assert mac_fraction_for_multiplier(spec, multiplier) <= budget
        assert all(b >= a for a, b in zip(multipliers, multipliers[1:]))


class TestTraining:
    def test_family_trains_one_model_per_budget(self, tiny_spec, image_dataset):
        loader = DataLoader(image_dataset, batch_size=16, shuffle=True, seed=0)
        result = train_width_multiplier_family(
            tiny_spec, loader, loader, mac_budgets=[0.4, 0.9], epochs=1,
            training=TrainingConfig(learning_rate=0.05),
        )
        assert len(result.models) == 2
        assert len(result.accuracies) == 2
        assert result.total_stored_parameters > result.models[0].num_parameters()
        points = result.operating_points()
        assert points[0]["mac_fraction"] <= 0.4
