"""Tests for prefix-assignment installation and MAC calibration."""

import numpy as np
import pytest

from repro.baselines.common import calibrate_width_fractions, set_prefix_assignments
from repro.core.network import SteppingNetwork


@pytest.fixture
def network(tiny_spec, rng):
    return SteppingNetwork(tiny_spec, num_subnets=3, rng=rng)


class TestSetPrefixAssignments:
    def test_prefix_blocks_installed(self, network):
        set_prefix_assignments(network, [0.3, 0.6, 1.0])
        for block in network.parametric_blocks():
            if block.is_output:
                continue
            assignment = block.layer.assignment.unit_subnet
            # Prefix structure: assignments are non-decreasing along the unit index.
            assert np.all(np.diff(assignment) >= 0)

    def test_output_layer_untouched(self, network):
        set_prefix_assignments(network, [0.3, 0.6, 1.0])
        assert network.output_layer.assignment.active_count(0) == 4

    def test_fraction_validation(self, network):
        with pytest.raises(ValueError):
            set_prefix_assignments(network, [0.5, 0.4, 1.0])
        with pytest.raises(ValueError):
            set_prefix_assignments(network, [0.0, 0.5, 1.0])
        with pytest.raises(ValueError):
            set_prefix_assignments(network, [0.5, 1.0])

    def test_macs_grow_with_fraction(self, network):
        set_prefix_assignments(network, [0.2, 0.5, 1.0])
        macs = [network.subnet_macs(i, apply_prune=False) for i in range(3)]
        assert macs[0] < macs[1] < macs[2]


class TestCalibration:
    def test_calibrated_macs_within_budgets(self, network, tiny_spec):
        budgets = [0.3, 0.6, 0.95]
        calibrate_width_fractions(network, budgets, reference_macs=tiny_spec.total_macs())
        reference = tiny_spec.total_macs()
        for subnet, budget in enumerate(budgets):
            fraction = network.subnet_macs(subnet, apply_prune=False) / reference
            assert fraction <= budget * 1.02

    def test_fractions_are_non_decreasing(self, network, tiny_spec):
        fractions = calibrate_width_fractions(network, [0.3, 0.6, 0.95], tiny_spec.total_macs())
        assert all(b >= a for a, b in zip(fractions, fractions[1:]))

    def test_large_budget_approaches_full_width(self, network, tiny_spec):
        fractions = calibrate_width_fractions(network, [0.3, 0.6, 1.0], tiny_spec.total_macs())
        assert fractions[-1] > 0.9

    def test_assignment_valid_after_calibration(self, network, tiny_spec):
        calibrate_width_fractions(network, [0.3, 0.6, 0.95], tiny_spec.total_macs())
        network.assignment.validate()
