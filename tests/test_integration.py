"""Cross-module integration tests: the claims the paper makes, end to end.

These tests run on the shared smoke-scale SteppingNet result (see
``trained_smoke_result`` in conftest) plus dedicated small scenarios, and
assert the qualitative properties the paper's evaluation reports:
incremental accuracy enhancement, MAC-budget compliance, computational
reuse when stepping, and the advantage of flexible subnet structures.
"""

import numpy as np
import pytest

from repro.analysis.experiments import SMOKE, prepare_data, prepare_spec, scaled_config
from repro.analysis.metrics import monotonic_violations
from repro.baselines import train_any_width, train_slimmable
from repro.core import IncrementalInference, anytime_schedule, build_steppingnet
from repro.nn.tensor import no_grad


class TestPaperClaims:
    def test_mac_budgets_hold_for_every_subnet(self, trained_smoke_result):
        result, _ = trained_smoke_result
        for fraction, budget in zip(result.mac_fractions, result.config.mac_budgets):
            assert fraction <= budget + 0.02

    def test_largest_subnet_approaches_teacher_accuracy(self, trained_smoke_result):
        result, _ = trained_smoke_result
        # The paper reports the largest subnet within a few points of the
        # original network; at smoke scale we only require the same order.
        assert result.subnet_accuracies[-1] >= result.teacher_accuracy - 0.25

    def test_incremental_accuracy_enhancement(self, trained_smoke_result):
        result, _ = trained_smoke_result
        assert monotonic_violations(result.subnet_accuracies, tolerance=0.05) <= 1
        assert result.subnet_accuracies[-1] >= result.subnet_accuracies[0]

    def test_stepping_reuses_all_previous_macs(self, trained_smoke_result):
        result, test_loader = trained_smoke_result
        network = result.network
        inputs, _ = next(iter(test_loader))
        steps = anytime_schedule(network, inputs)
        # Executing all levels via stepping costs exactly the largest subnet.
        assert sum(s.macs_executed for s in steps) == network.subnet_macs(network.num_subnets - 1)
        # Every stepped result equals the direct forward pass of its level.
        network.eval()
        with no_grad():
            for step in steps:
                direct = network.forward(inputs, subnet=step.subnet).data
                np.testing.assert_allclose(step.logits, direct, atol=1e-8)

    def test_preliminary_decision_available_at_small_fraction_of_macs(self, trained_smoke_result):
        """The autonomous-driving motivation: subnet 1 yields usable predictions cheaply."""
        result, test_loader = trained_smoke_result
        network = result.network
        inputs, labels = next(iter(test_loader))
        engine = IncrementalInference(network)
        first = engine.run(inputs, subnet=0)
        chance = 1.0 / result.spec.num_classes
        accuracy = float((first.predictions == labels).mean())
        assert first.cumulative_macs < 0.2 * network.subnet_macs(network.num_subnets - 1)
        assert accuracy >= chance - 0.1


class TestAgainstBaselines:
    @pytest.fixture(scope="class")
    def comparison(self):
        train_loader, test_loader, num_classes = prepare_data("cifar10", SMOKE)
        spec = prepare_spec("lenet-3c1l", num_classes, SMOKE)
        config = scaled_config("lenet-3c1l", SMOKE)
        stepping = build_steppingnet(spec, train_loader, test_loader, config)
        any_width = train_any_width(spec, train_loader, test_loader, config, epochs=2)
        slimmable = train_slimmable(spec, train_loader, test_loader, config, epochs=2)
        return stepping, any_width, slimmable

    def test_all_methods_respect_the_same_budgets(self, comparison):
        stepping, any_width, slimmable = comparison
        budgets = stepping.config.mac_budgets
        for fractions in (stepping.mac_fractions, any_width.mac_fractions, slimmable.mac_fractions):
            for fraction, budget in zip(fractions, budgets):
                assert fraction <= budget + 0.02

    def test_steppingnet_competitive_with_baselines_on_average(self, comparison):
        """Fig. 6's qualitative claim, relaxed to smoke scale: SteppingNet's mean
        accuracy over the subnets is at least as good as the weaker baseline."""
        stepping, any_width, slimmable = comparison
        stepping_mean = np.mean(stepping.subnet_accuracies)
        baseline_min = min(np.mean(any_width.subnet_accuracies), np.mean(slimmable.subnet_accuracies))
        assert stepping_mean >= baseline_min - 0.05

    def test_steppingnet_subnet_structures_are_irregular(self, comparison):
        """SteppingNet's advantage is structural freedom: after construction the
        unit-to-subnet assignment is generally not a width prefix."""
        stepping, _, _ = comparison
        irregular = False
        for block in stepping.network.parametric_blocks():
            if block.is_output:
                continue
            assignment = block.layer.assignment.unit_subnet
            if np.any(np.diff(assignment) < 0):
                irregular = True
        assert irregular
