"""Tests for the synthetic datasets."""

import numpy as np
import pytest

from repro.data.datasets import (
    ArrayDataset,
    SyntheticCIFAR,
    SyntheticImageConfig,
    SyntheticVectors,
    synthetic_cifar10,
    synthetic_cifar100,
    train_test_split,
)


class TestArrayDataset:
    def test_length_and_indexing(self):
        ds = ArrayDataset(np.zeros((10, 3, 4, 4)), np.arange(10) % 2)
        assert len(ds) == 10
        image, label = ds[3]
        assert image.shape == (3, 4, 4)
        assert label == 1

    def test_num_classes_inferred(self):
        ds = ArrayDataset(np.zeros((6, 2)), np.array([0, 1, 2, 0, 1, 2]))
        assert ds.num_classes == 3

    def test_num_classes_override(self):
        ds = ArrayDataset(np.zeros((2, 2)), np.array([0, 1]), num_classes=10)
        assert ds.num_classes == 10

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 2)), np.zeros(4))

    def test_subset(self):
        ds = ArrayDataset(np.arange(10).reshape(10, 1), np.arange(10) % 2)
        sub = ds.subset(np.array([0, 2, 4]))
        assert len(sub) == 3
        assert sub[1][0][0] == 2
        assert sub.num_classes == ds.num_classes


class TestSyntheticCIFAR:
    def test_shapes_and_labels(self):
        config = SyntheticImageConfig(num_classes=5, image_size=16, samples_per_class=4, seed=1)
        ds = SyntheticCIFAR(config)
        assert len(ds) == 20
        image, label = ds[0]
        assert image.shape == (3, 16, 16)
        assert 0 <= label < 5
        assert ds.num_classes == 5

    def test_all_classes_present(self):
        ds = SyntheticCIFAR(SyntheticImageConfig(num_classes=6, samples_per_class=3, image_size=12))
        assert set(ds.labels.tolist()) == set(range(6))

    def test_deterministic_given_seed(self):
        config = SyntheticImageConfig(num_classes=3, image_size=12, samples_per_class=4, seed=7)
        a = SyntheticCIFAR(config)
        b = SyntheticCIFAR(config)
        np.testing.assert_allclose(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_train_test_share_prototypes_but_differ_in_samples(self):
        config = SyntheticImageConfig(num_classes=3, image_size=12, samples_per_class=4, seed=3)
        train = SyntheticCIFAR(config, train=True)
        test = SyntheticCIFAR(config, train=False)
        np.testing.assert_allclose(train.prototypes, test.prototypes)
        assert not np.allclose(train.images, test.images)

    def test_noise_controls_difficulty(self):
        clean = SyntheticCIFAR(SyntheticImageConfig(num_classes=3, image_size=12, samples_per_class=4, noise_std=0.0))
        noisy = SyntheticCIFAR(SyntheticImageConfig(num_classes=3, image_size=12, samples_per_class=4, noise_std=1.0))
        assert noisy.images.std() > clean.images.std()

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            SyntheticCIFAR(SyntheticImageConfig(num_classes=1))
        with pytest.raises(ValueError):
            SyntheticCIFAR(SyntheticImageConfig(image_size=4))

    def test_cifar10_and_cifar100_factories(self):
        ten = synthetic_cifar10(samples_per_class=2, image_size=12)
        hundred = synthetic_cifar100(samples_per_class=1, image_size=12)
        assert ten.num_classes == 10
        assert hundred.num_classes == 100
        assert len(hundred) == 100

    def test_classes_are_distinguishable_by_prototype(self):
        """Different class prototypes differ far more than within-class samples."""
        ds = SyntheticCIFAR(SyntheticImageConfig(num_classes=4, image_size=16, samples_per_class=8, noise_std=0.2))
        protos = ds.prototypes.reshape(4, -1)
        cross_class = np.linalg.norm(protos[0] - protos[1])
        assert cross_class > 1.0


class TestSyntheticVectors:
    def test_shapes(self):
        ds = SyntheticVectors(num_classes=3, dim=8, samples_per_class=10)
        assert len(ds) == 30
        sample, label = ds[0]
        assert sample.shape == (8,)
        assert ds.num_classes == 3

    def test_classes_form_separated_blobs(self):
        ds = SyntheticVectors(num_classes=2, dim=4, samples_per_class=30, noise_std=0.1, seed=1)
        class0 = ds.images[ds.labels == 0].mean(axis=0)
        class1 = ds.images[ds.labels == 1].mean(axis=0)
        assert np.linalg.norm(class0 - class1) > 1.0


class TestSplit:
    def test_split_sizes(self):
        ds = ArrayDataset(np.zeros((20, 2)), np.arange(20) % 4)
        train, test = train_test_split(ds, test_fraction=0.25, seed=0)
        assert len(train) == 15
        assert len(test) == 5

    def test_split_disjoint(self):
        ds = ArrayDataset(np.arange(20).reshape(20, 1), np.arange(20) % 4)
        train, test = train_test_split(ds, test_fraction=0.3, seed=0)
        train_values = set(train.images[:, 0].tolist())
        test_values = set(test.images[:, 0].tolist())
        assert train_values.isdisjoint(test_values)

    def test_invalid_fraction(self):
        ds = ArrayDataset(np.zeros((4, 1)), np.zeros(4))
        with pytest.raises(ValueError):
            train_test_split(ds, test_fraction=1.5)
