"""Tests for data transforms."""

import numpy as np
import pytest

from repro.data.transforms import (
    AdditiveGaussianNoise,
    Compose,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    dataset_statistics,
)


class TestNormalize:
    def test_standardises(self):
        sample = np.stack([np.full((4, 4), 10.0), np.full((4, 4), -10.0)])
        out = Normalize([10.0, -10.0], [2.0, 5.0])(sample)
        np.testing.assert_allclose(out, np.zeros((2, 4, 4)))

    def test_rejects_zero_std(self):
        with pytest.raises(ValueError):
            Normalize([0.0], [0.0])


class TestFlip:
    def test_always_flip(self):
        sample = np.arange(8, dtype=float).reshape(1, 2, 4)
        out = RandomHorizontalFlip(p=1.0)(sample)
        np.testing.assert_allclose(out[0, 0], [3, 2, 1, 0])

    def test_never_flip(self):
        sample = np.arange(8, dtype=float).reshape(1, 2, 4)
        np.testing.assert_allclose(RandomHorizontalFlip(p=0.0)(sample), sample)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            RandomHorizontalFlip(p=2.0)


class TestCrop:
    def test_preserves_shape(self):
        sample = np.random.default_rng(0).standard_normal((3, 8, 8))
        out = RandomCrop(padding=2, seed=0)(sample)
        assert out.shape == (3, 8, 8)

    def test_zero_padding_is_identity(self):
        sample = np.ones((3, 8, 8))
        np.testing.assert_allclose(RandomCrop(padding=0)(sample), sample)

    def test_negative_padding_rejected(self):
        with pytest.raises(ValueError):
            RandomCrop(padding=-1)


class TestNoiseAndCompose:
    def test_noise_zero_std_identity(self):
        sample = np.ones((1, 4, 4))
        np.testing.assert_allclose(AdditiveGaussianNoise(0.0)(sample), sample)

    def test_noise_changes_values(self):
        sample = np.ones((1, 4, 4))
        out = AdditiveGaussianNoise(0.5, seed=0)(sample)
        assert not np.allclose(out, sample)

    def test_negative_std_rejected(self):
        with pytest.raises(ValueError):
            AdditiveGaussianNoise(-1.0)

    def test_compose_applies_in_order(self):
        sample = np.full((1, 2, 2), 4.0)
        pipeline = Compose([Normalize([4.0], [2.0]), Normalize([0.0], [0.5])])
        np.testing.assert_allclose(pipeline(sample), np.zeros((1, 2, 2)))


class TestStatistics:
    def test_dataset_statistics(self):
        images = np.concatenate([np.zeros((5, 2, 3, 3)), np.ones((5, 2, 3, 3))])
        mean, std = dataset_statistics(images)
        np.testing.assert_allclose(mean, [0.5, 0.5])
        np.testing.assert_allclose(std, [0.5, 0.5])

    def test_std_floor(self):
        images = np.zeros((4, 1, 2, 2))
        _, std = dataset_statistics(images)
        assert std[0] > 0
