"""Tests for the DataLoader."""

import numpy as np
import pytest

from repro.data.datasets import ArrayDataset
from repro.data.loaders import DataLoader
from repro.data.transforms import Normalize


def make_dataset(n=20, channels=2, size=4):
    images = np.arange(n * channels * size * size, dtype=float).reshape(n, channels, size, size)
    labels = np.arange(n) % 3
    return ArrayDataset(images, labels)


class TestBatching:
    def test_batch_shapes(self):
        loader = DataLoader(make_dataset(), batch_size=8)
        x, y = next(iter(loader))
        assert x.shape == (8, 2, 4, 4)
        assert y.shape == (8,)
        assert y.dtype == np.int64

    def test_len_rounds_up(self):
        assert len(DataLoader(make_dataset(20), batch_size=8)) == 3

    def test_len_drop_last(self):
        assert len(DataLoader(make_dataset(20), batch_size=8, drop_last=True)) == 2

    def test_drop_last_skips_partial_batch(self):
        loader = DataLoader(make_dataset(20), batch_size=8, drop_last=True)
        sizes = [len(y) for _, y in loader]
        assert sizes == [8, 8]

    def test_all_samples_covered_without_shuffle(self):
        loader = DataLoader(make_dataset(10), batch_size=4)
        seen = np.concatenate([x[:, 0, 0, 0] for x, _ in loader])
        assert len(seen) == 10

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(make_dataset(), batch_size=0)


class TestShuffling:
    def test_shuffle_changes_order_between_epochs(self):
        loader = DataLoader(make_dataset(32), batch_size=32, shuffle=True, seed=0)
        first = next(iter(loader))[1].copy()
        second = next(iter(loader))[1].copy()
        assert not np.array_equal(first, second)

    def test_same_seed_gives_same_first_epoch(self):
        a = DataLoader(make_dataset(32), batch_size=32, shuffle=True, seed=5)
        b = DataLoader(make_dataset(32), batch_size=32, shuffle=True, seed=5)
        np.testing.assert_array_equal(next(iter(a))[1], next(iter(b))[1])

    def test_no_shuffle_preserves_order(self):
        loader = DataLoader(make_dataset(6), batch_size=6, shuffle=False)
        _, labels = next(iter(loader))
        np.testing.assert_array_equal(labels, np.arange(6) % 3)


class TestTransformsAndFullBatch:
    def test_transform_applied_per_sample(self):
        ds = ArrayDataset(np.ones((4, 2, 3, 3)), np.zeros(4))
        loader = DataLoader(ds, batch_size=4, transform=Normalize([1.0, 1.0], [2.0, 2.0]))
        x, _ = next(iter(loader))
        np.testing.assert_allclose(x, np.zeros((4, 2, 3, 3)))

    def test_full_batch_returns_everything(self):
        loader = DataLoader(make_dataset(10), batch_size=3)
        x, y = loader.full_batch()
        assert x.shape[0] == 10
        assert y.shape == (10,)

    def test_full_batch_applies_transform(self):
        ds = ArrayDataset(np.full((3, 1, 2, 2), 4.0), np.zeros(3))
        loader = DataLoader(ds, batch_size=2, transform=Normalize([4.0], [1.0]))
        x, _ = loader.full_batch()
        np.testing.assert_allclose(x, np.zeros((3, 1, 2, 2)))
