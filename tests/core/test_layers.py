"""Tests for the masked stepping layers and the weight-mask construction."""

import numpy as np
import pytest

from repro.core.layers import (
    MaskedBatchNorm1d,
    MaskedBatchNorm2d,
    SteppingConv2d,
    SteppingLinear,
    build_unit_mask,
    build_weight_mask,
)
from repro.nn.tensor import Tensor


class TestBuildWeightMask:
    def test_all_units_in_subnet_zero_gives_full_mask(self):
        mask = build_weight_mask(np.zeros(3, int), np.zeros(4, int), subnet=0)
        np.testing.assert_allclose(mask, np.ones((3, 4)))

    def test_membership_excludes_larger_subnet_units(self):
        out_subnet = np.array([0, 1])
        in_subnet = np.array([0, 1])
        mask = build_weight_mask(out_subnet, in_subnet, subnet=0)
        # Only the (old out, old in) synapse is active in subnet 0.
        np.testing.assert_allclose(mask, [[1, 0], [0, 0]])

    def test_structural_rule_blocks_new_to_old_synapses(self):
        out_subnet = np.array([0, 1])
        in_subnet = np.array([0, 1])
        mask = build_weight_mask(out_subnet, in_subnet, subnet=1)
        # Synapse from the new input unit (subnet 1) into the old output
        # unit (subnet 0) is forbidden; everything else active.
        np.testing.assert_allclose(mask, [[1, 0], [1, 1]])

    def test_disabling_structural_rule_allows_new_to_old(self):
        out_subnet = np.array([0, 1])
        in_subnet = np.array([0, 1])
        mask = build_weight_mask(out_subnet, in_subnet, subnet=1, enforce_incremental=False)
        np.testing.assert_allclose(mask, np.ones((2, 2)))

    def test_prune_mask_is_applied(self):
        prune = np.array([[1.0, 0.0], [1.0, 1.0]])
        mask = build_weight_mask(np.zeros(2, int), np.zeros(2, int), 0, prune_mask=prune)
        np.testing.assert_allclose(mask, prune)

    def test_unused_units_never_active(self):
        out_subnet = np.array([0, 3])  # 3 == UNUSED for a 3-subnet layer
        mask = build_weight_mask(out_subnet, np.zeros(2, int), subnet=2)
        np.testing.assert_allclose(mask[1], [0, 0])

    def test_masks_are_nested_across_subnets(self):
        rng = np.random.default_rng(0)
        out_subnet = rng.integers(0, 3, size=10)
        in_subnet = rng.integers(0, 3, size=8)
        previous = build_weight_mask(out_subnet, in_subnet, 0)
        for subnet in range(1, 3):
            current = build_weight_mask(out_subnet, in_subnet, subnet)
            assert np.all(previous <= current)
            previous = current


class TestSteppingLinear:
    def _layer(self, enforce=True):
        rng = np.random.default_rng(0)
        layer = SteppingLinear(4, 3, num_subnets=3, enforce_incremental=enforce, rng=rng)
        return layer

    def test_inactive_output_units_are_zero(self):
        layer = self._layer()
        layer.assignment.move_units([2], 1)
        out = layer(Tensor(np.ones((2, 4))), subnet=0, in_unit_subnet=np.zeros(4, int))
        np.testing.assert_allclose(out.data[:, 2], 0.0)
        assert np.abs(out.data[:, :2]).sum() > 0

    def test_inactive_inputs_do_not_affect_old_outputs(self):
        """The incremental property at the layer level: output of an old unit
        is identical whether or not newer input units carry values."""
        layer = self._layer()
        in_subnet = np.array([0, 0, 1, 1])
        x_small = np.array([[1.0, 2.0, 0.0, 0.0]])
        x_large = np.array([[1.0, 2.0, 5.0, -7.0]])
        out_small = layer(Tensor(x_small), 0, in_subnet).data
        out_large = layer(Tensor(x_large), 1, in_subnet).data
        # Unit outputs that were active in subnet 0 keep the same value.
        np.testing.assert_allclose(out_small[0], out_large[0], atol=1e-12)

    def test_without_structural_rule_old_outputs_change(self):
        layer = self._layer(enforce=False)
        in_subnet = np.array([0, 0, 1, 1])
        out_small = layer(Tensor(np.array([[1.0, 2.0, 0.0, 0.0]])), 0, in_subnet).data
        out_large = layer(Tensor(np.array([[1.0, 2.0, 5.0, -7.0]])), 1, in_subnet).data
        assert not np.allclose(out_small[0], out_large[0])

    def test_active_macs_counts_mask_entries(self):
        layer = self._layer()
        layer.assignment.move_units([2], 1)
        in_subnet = np.array([0, 0, 1, 1])
        # Subnet 0: 2 active outputs x 2 active inputs.
        assert layer.active_macs(0, in_subnet) == 4
        # Subnet 1: old outputs keep 2 inputs each, new output uses all 4.
        assert layer.active_macs(1, in_subnet) == 2 * 2 + 4

    def test_unit_macs_per_output(self):
        layer = self._layer()
        in_subnet = np.zeros(4, int)
        np.testing.assert_allclose(layer.unit_macs(0, in_subnet), [4, 4, 4])

    def test_prune_mask_reduces_macs_but_not_structure(self):
        layer = self._layer()
        layer.prune_mask[0, :2] = 0.0
        assert layer.active_macs(0, np.zeros(4, int)) == 10
        assert layer.active_macs(0, np.zeros(4, int), apply_prune=False) == 12

    def test_importance_scale_gradient_collected(self):
        layer = self._layer()
        out = layer(Tensor(np.ones((2, 4))), 0, np.zeros(4, int), collect_importance=True)
        out.sum().backward()
        assert layer.last_importance_scale is not None
        assert layer.last_importance_scale.grad is not None
        assert layer.last_importance_scale.grad.shape == (3,)

    def test_importance_scale_cleared_when_not_collecting(self):
        layer = self._layer()
        layer(Tensor(np.ones((2, 4))), 0, np.zeros(4, int), collect_importance=True)
        layer(Tensor(np.ones((2, 4))), 0, np.zeros(4, int), collect_importance=False)
        assert layer.last_importance_scale is None

    def test_importance_gradient_zero_for_inactive_units(self):
        layer = self._layer()
        layer.assignment.move_units([1], 2)
        out = layer(Tensor(np.ones((2, 4))), 0, np.zeros(4, int), collect_importance=True)
        out.sum().backward()
        assert layer.last_importance_scale.grad[1] == pytest.approx(0.0)


class TestSteppingConv2d:
    def _layer(self):
        return SteppingConv2d(2, 4, 3, num_subnets=3, padding=1, rng=np.random.default_rng(0))

    def test_forward_shape(self):
        layer = self._layer()
        out = layer(Tensor(np.zeros((2, 2, 8, 8))), 0, np.zeros(2, int))
        assert out.shape == (2, 4, 8, 8)

    def test_inactive_filters_are_zero(self):
        layer = self._layer()
        layer.assignment.move_units([3], 2)
        out = layer(Tensor(np.ones((1, 2, 6, 6))), 0, np.zeros(2, int))
        np.testing.assert_allclose(out.data[:, 3], 0.0)

    def test_active_macs_scale_with_spatial_size(self):
        layer = self._layer()
        small = layer.active_macs(0, np.zeros(2, int), (8, 8))
        large = layer.active_macs(0, np.zeros(2, int), (16, 16))
        assert large == 4 * small

    def test_mac_formula_matches_hand_count(self):
        layer = self._layer()
        # 4 filters x 2 input channels x 3x3 kernel x 8x8 output positions.
        assert layer.active_macs(0, np.zeros(2, int), (8, 8)) == 4 * 2 * 9 * 64

    def test_unit_macs_shape(self):
        layer = self._layer()
        assert layer.unit_macs(0, np.zeros(2, int), (8, 8)).shape == (4,)

    def test_filter_level_importance_scale(self):
        layer = self._layer()
        out = layer(Tensor(np.ones((1, 2, 6, 6))), 0, np.zeros(2, int), collect_importance=True)
        out.sum().backward()
        assert layer.last_importance_scale.grad.shape == (4,)

    def test_output_spatial_size(self):
        layer = SteppingConv2d(1, 1, 3, num_subnets=2, stride=2, padding=1)
        assert layer.output_spatial_size(8, 8) == (4, 4)


class TestMaskedBatchNorm:
    def test_inactive_channel_stats_frozen(self):
        norm = MaskedBatchNorm2d(3)
        x = Tensor(np.random.default_rng(0).standard_normal((8, 3, 4, 4)) + 5.0)
        active = np.array([True, True, False])
        norm(x, active)
        assert norm.running_mean[0] != 0.0
        assert norm.running_mean[2] == 0.0
        assert norm.running_var[2] == 1.0

    def test_output_masks_inactive_channels(self):
        norm = MaskedBatchNorm2d(3)
        x = Tensor(np.random.default_rng(0).standard_normal((4, 3, 4, 4)))
        out = norm(x, np.array([True, False, True]))
        np.testing.assert_allclose(out.data[:, 1], 0.0)

    def test_eval_mode_does_not_touch_stats(self):
        norm = MaskedBatchNorm1d(2)
        norm.eval()
        before = norm.running_mean.copy()
        norm(Tensor(np.random.default_rng(0).standard_normal((4, 2)) + 3), np.array([True, True]))
        np.testing.assert_allclose(norm.running_mean, before)

    def test_active_channel_statistics_match_plain_batchnorm(self):
        """When every channel is active the masked BN behaves like plain BN."""
        norm = MaskedBatchNorm1d(3)
        x = Tensor(np.random.default_rng(0).standard_normal((16, 3)) * 2 + 1)
        out = norm(x, np.array([True, True, True]))
        np.testing.assert_allclose(out.data.mean(axis=0), np.zeros(3), atol=1e-8)
