"""Tests for subnet assignments (nesting, moves, the unused pool)."""

import numpy as np
import pytest

from repro.core.assignment import LayerAssignment, SubnetAssignment, prefix_assignment


class TestLayerAssignment:
    def test_all_units_start_in_smallest_subnet(self):
        layer = LayerAssignment(8, 4)
        assert layer.active_count(0) == 8
        np.testing.assert_array_equal(layer.counts_per_subnet(), [8, 0, 0, 0, 0])

    def test_move_units_changes_membership(self):
        layer = LayerAssignment(6, 3)
        layer.move_units([0, 1], to_subnet=1)
        assert layer.active_count(0) == 4
        assert layer.active_count(1) == 6
        np.testing.assert_array_equal(layer.units_in_exactly(1), [0, 1])

    def test_move_to_unused_removes_from_all_subnets(self):
        layer = LayerAssignment(4, 2)
        layer.move_units([3], to_subnet=layer.UNUSED)
        assert layer.active_count(1) == 3
        np.testing.assert_array_equal(layer.unused_units(), [3])

    def test_cannot_move_backwards(self):
        layer = LayerAssignment(4, 3)
        layer.move_units([0], 2)
        with pytest.raises(ValueError, match="nesting"):
            layer.move_units([0], 1)

    def test_move_empty_list_is_noop(self):
        layer = LayerAssignment(4, 3)
        layer.move_units([], 1)
        assert layer.active_count(0) == 4

    def test_frozen_layer_rejects_moves(self):
        layer = LayerAssignment(4, 3, frozen=True)
        with pytest.raises(RuntimeError):
            layer.move_units([0], 1)

    def test_out_of_range_unit_index(self):
        layer = LayerAssignment(4, 3)
        with pytest.raises(IndexError):
            layer.move_units([7], 1)

    def test_out_of_range_subnet_query(self):
        layer = LayerAssignment(4, 3)
        with pytest.raises(IndexError):
            layer.active_mask(3)

    def test_set_assignment_validates_shape_and_range(self):
        layer = LayerAssignment(4, 2)
        with pytest.raises(ValueError):
            layer.set_assignment([0, 1])
        with pytest.raises(ValueError):
            layer.set_assignment([0, 1, 5, 0])
        layer.set_assignment([0, 1, 1, layer.UNUSED])
        assert layer.active_count(1) == 3

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            LayerAssignment(0, 2)
        with pytest.raises(ValueError):
            LayerAssignment(4, 0)

    def test_nesting_active_masks(self):
        layer = LayerAssignment(6, 3)
        layer.move_units([0, 1], 1)
        layer.move_units([2], 2)
        for small, large in ((0, 1), (1, 2)):
            assert np.all(layer.active_mask(small) <= layer.active_mask(large))


class TestSubnetAssignment:
    def _make(self):
        layers = [LayerAssignment(6, 3, name="a"), LayerAssignment(4, 3, name="b")]
        return SubnetAssignment(layers, min_units=1)

    def test_validate_passes_on_fresh_assignment(self):
        self._make().validate()

    def test_validate_detects_empty_smallest_subnet(self):
        assignment = self._make()
        assignment.layers[1].unit_subnet[:] = 2  # nothing left in subnet 0
        with pytest.raises(ValueError, match="smallest"):
            assignment.validate()

    def test_by_name(self):
        assignment = self._make()
        assert assignment.by_name("b").num_units == 4
        with pytest.raises(KeyError):
            assignment.by_name("missing")

    def test_summary_counts(self):
        assignment = self._make()
        assignment.layers[0].move_units([0], 1)
        summary = assignment.summary()
        assert summary["a"] == [5, 6, 6]
        assert summary["b"] == [4, 4, 4]

    def test_copy_is_deep(self):
        assignment = self._make()
        clone = assignment.copy()
        clone.layers[0].move_units([0], 2)
        assert assignment.layers[0].active_count(0) == 6

    def test_requires_consistent_subnet_counts(self):
        with pytest.raises(ValueError):
            SubnetAssignment([LayerAssignment(4, 2), LayerAssignment(4, 3)])

    def test_movable_units_respects_frozen_and_last_subnet(self):
        layers = [LayerAssignment(6, 3, name="a"), LayerAssignment(4, 3, name="out", frozen=True)]
        assignment = SubnetAssignment(layers)
        assert assignment.movable_units(1, 0).size == 0
        assert assignment.movable_units(0, 2).size == 0
        assert assignment.movable_units(0, 0).size == 6


class TestPrefixAssignment:
    def test_blocks_are_contiguous_and_ordered(self):
        layer = prefix_assignment(10, 3, [0.3, 0.6, 1.0])
        np.testing.assert_array_equal(layer.unit_subnet, [0, 0, 0, 1, 1, 1, 2, 2, 2, 2])

    def test_minimum_one_unit_in_first_subnet(self):
        layer = prefix_assignment(10, 2, [0.01, 1.0])
        assert layer.active_count(0) >= 1

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            prefix_assignment(10, 2, [0.8, 0.5])
        with pytest.raises(ValueError):
            prefix_assignment(10, 3, [0.5, 1.0])

    def test_frozen_prefix_keeps_everything_in_subnet_zero(self):
        layer = prefix_assignment(5, 3, [0.2, 0.5, 1.0], frozen=True)
        assert layer.active_count(0) == 5
