"""Tests for the incremental inference engine — the reuse guarantee of SteppingNet."""

import numpy as np
import pytest

from repro.core.assignment import prefix_assignment
from repro.core.incremental import IncrementalInference, anytime_schedule
from repro.core.network import SteppingNetwork
from repro.nn.tensor import no_grad


@pytest.fixture
def network(tiny_spec, rng, image_loader):
    """A stepping network with a non-trivial, irregular subnet structure."""
    net = SteppingNetwork(tiny_spec.expand(1.5), num_subnets=3, rng=rng)
    # Scatter units over subnets (including some unused) to exercise the
    # general case rather than the all-in-subnet-0 default.
    scatter_rng = np.random.default_rng(7)
    for block in net.parametric_blocks():
        if block.is_output:
            continue
        layer = block.layer
        assignment = scatter_rng.integers(0, 4, size=layer.assignment.num_units)
        assignment[0] = 0  # keep the minimum-width invariant
        layer.assignment.set_assignment(assignment)
    net.assignment.validate()
    return net


@pytest.fixture
def inputs(image_batch):
    return image_batch[0]


class TestExactness:
    def test_initial_run_matches_direct_forward(self, network, inputs):
        engine = IncrementalInference(network)
        result = engine.run(inputs, subnet=0)
        network.eval()
        with no_grad():
            direct = network.forward(inputs, subnet=0).data
        np.testing.assert_allclose(result.logits, direct, atol=1e-10)

    @pytest.mark.parametrize("path", [(0, 1, 2), (0, 2), (1, 2)])
    def test_stepping_matches_direct_forward_of_target_subnet(self, network, inputs, path):
        engine = IncrementalInference(network)
        result = engine.run(inputs, subnet=path[0])
        for level in path[1:]:
            result = engine.step_to(level)
        network.eval()
        with no_grad():
            direct = network.forward(inputs, subnet=path[-1]).data
        np.testing.assert_allclose(result.logits, direct, atol=1e-10)

    def test_step_up_convenience(self, network, inputs):
        engine = IncrementalInference(network)
        engine.run(inputs, subnet=0)
        result = engine.step_up()
        assert result.subnet == 1

    def test_prune_mask_respected(self, network, inputs):
        layer = network.param_layers[0]
        layer.prune_mask[:, :, 0, 0] = 0.0
        engine = IncrementalInference(network, apply_prune=True)
        result = engine.run(inputs, subnet=2)
        network.eval()
        with no_grad():
            direct = network.forward(inputs, subnet=2, apply_prune=True).data
        np.testing.assert_allclose(result.logits, direct, atol=1e-10)


class TestMacAccounting:
    def test_step_macs_equal_subnet_difference(self, network, inputs):
        engine = IncrementalInference(network)
        engine.run(inputs, subnet=0)
        result = engine.step_to(2)
        assert result.macs_executed == network.subnet_macs(2) - network.subnet_macs(0)
        assert result.macs_reused == network.subnet_macs(0)
        assert result.cumulative_macs == network.subnet_macs(2)

    def test_total_stepped_macs_equal_largest_subnet(self, network, inputs):
        results = anytime_schedule(network, inputs)
        total_executed = sum(step.macs_executed for step in results)
        assert total_executed == network.subnet_macs(network.num_subnets - 1)

    def test_reuse_fraction_grows_with_each_step(self, network, inputs):
        results = anytime_schedule(network, inputs)
        fractions = [step.reuse_fraction for step in results[1:]]
        assert all(f > 0 for f in fractions)

    def test_stepping_cheaper_than_rerunning(self, network, inputs):
        """The headline claim: refining via steps costs less than re-running each subnet."""
        results = anytime_schedule(network, inputs)
        stepped = sum(step.macs_executed for step in results)
        rerun = sum(network.subnet_macs(i) for i in range(network.num_subnets))
        assert stepped < rerun


class TestPredictionsAndState:
    def test_predictions_shape(self, network, inputs):
        engine = IncrementalInference(network)
        result = engine.run(inputs, subnet=0)
        assert result.predictions.shape == (inputs.shape[0],)

    def test_steps_are_recorded(self, network, inputs):
        engine = IncrementalInference(network)
        engine.run(inputs, subnet=0)
        engine.step_to(1)
        engine.step_to(2)
        assert [step.subnet for step in engine.steps] == [0, 1, 2]
        assert engine.current_subnet == 2

    def test_reset_clears_state(self, network, inputs):
        engine = IncrementalInference(network)
        engine.run(inputs, subnet=0)
        engine.reset()
        assert engine.current_subnet == -1
        assert engine.steps == []

    def test_run_on_new_batch_resets_cache(self, network, inputs):
        engine = IncrementalInference(network)
        engine.run(inputs, subnet=0)
        other = inputs + 1.0
        result = engine.run(other, subnet=0)
        network.eval()
        with no_grad():
            direct = network.forward(other, subnet=0).data
        np.testing.assert_allclose(result.logits, direct, atol=1e-10)


class TestErrors:
    def test_step_before_run(self, network):
        with pytest.raises(RuntimeError):
            IncrementalInference(network).step_to(1)

    def test_step_down_rejected(self, network, inputs):
        engine = IncrementalInference(network)
        engine.run(inputs, subnet=2)
        with pytest.raises(ValueError):
            engine.step_to(1)

    def test_step_out_of_range(self, network, inputs):
        engine = IncrementalInference(network)
        engine.run(inputs, subnet=0)
        with pytest.raises(IndexError):
            engine.step_to(10)

    def test_anytime_schedule_requires_levels(self, network, inputs):
        with pytest.raises(ValueError):
            anytime_schedule(network, inputs, subnets=[])

    def test_flat_input_rejected_for_conv_network(self, network):
        with pytest.raises(ValueError):
            IncrementalInference(network).run(np.zeros((2, 10)), subnet=0)


class TestMlpNetwork:
    def test_incremental_reuse_on_mlp(self, mlp_spec, rng):
        network = SteppingNetwork(mlp_spec, num_subnets=3, rng=rng)
        for block in network.parametric_blocks():
            if block.is_output:
                continue
            layer = block.layer
            layer.assignment.set_assignment(
                prefix_assignment(layer.assignment.num_units, 3, [0.4, 0.7, 1.0]).unit_subnet
            )
        x = np.random.default_rng(0).standard_normal((5, 16))
        engine = IncrementalInference(network)
        engine.run(x, subnet=0)
        stepped = engine.step_to(2)
        network.eval()
        with no_grad():
            direct = network.forward(x, subnet=2).data
        np.testing.assert_allclose(stepped.logits, direct, atol=1e-10)


class TestSuspendResume:
    """export_state / import_state: the serving engine's context switch."""

    def test_export_resets_engine(self, network, inputs):
        engine = IncrementalInference(network)
        engine.run(inputs, subnet=0)
        state = engine.export_state()
        assert engine.current_subnet == -1
        assert state.current_subnet == 0

    def test_resume_continues_with_reuse(self, network, inputs):
        engine = IncrementalInference(network)
        engine.run(inputs, subnet=0)
        state = engine.export_state()
        engine.import_state(state)
        result = engine.step_to(2)
        assert result.macs_executed == network.subnet_macs(2) - network.subnet_macs(0)
        network.eval()
        with no_grad():
            direct = network.forward(inputs, subnet=2).data
        np.testing.assert_allclose(result.logits, direct, atol=1e-10)

    def test_interleaved_contexts_stay_isolated(self, network, inputs):
        """One engine serves two input batches alternately, like the
        serving engine multiplexing preempted requests."""
        batch_a, batch_b = inputs[:2], inputs[2:4]
        engine = IncrementalInference(network)

        engine.run(batch_a, subnet=0)
        state_a = engine.export_state()
        engine.run(batch_b, subnet=0)
        state_b = engine.export_state()

        engine.import_state(state_a)
        stepped_a = engine.step_to(2)
        state_a = engine.export_state()
        engine.import_state(state_b)
        stepped_b = engine.step_to(1)

        network.eval()
        with no_grad():
            direct_a = network.forward(batch_a, subnet=2).data
            direct_b = network.forward(batch_b, subnet=1).data
        np.testing.assert_allclose(stepped_a.logits, direct_a, atol=1e-10)
        np.testing.assert_allclose(stepped_b.logits, direct_b, atol=1e-10)

    def test_import_none_resets(self, network, inputs):
        engine = IncrementalInference(network)
        engine.run(inputs, subnet=0)
        engine.import_state(None)
        assert engine.current_subnet == -1

    def test_state_copy_is_isolated(self, network, inputs):
        engine = IncrementalInference(network)
        engine.run(inputs, subnet=0)
        state = engine.export_state()
        snapshot = state.copy()
        engine.import_state(state)
        engine.step_to(2)  # mutates the live state's caches in place
        assert snapshot.current_subnet == 0
        for key, value in snapshot.cache.items():
            assert value.flags.owndata or value.base is not state.cache.get(key)


class TestInferenceDtype:
    def test_default_is_float64(self, network, inputs):
        engine = IncrementalInference(network)
        result = engine.run(inputs, subnet=0)
        assert result.logits.dtype == np.float64

    def test_float32_pipeline(self, network, inputs):
        engine = IncrementalInference(network, dtype=np.float32)
        result = engine.run(inputs, subnet=0)
        assert result.logits.dtype == np.float32
        stepped = engine.step_to(2)
        assert stepped.logits.dtype == np.float32
        for cached in engine._cache.values():
            assert cached.dtype == np.float32

    def test_float32_close_to_float64(self, network, inputs):
        exact = IncrementalInference(network).run(inputs, subnet=2)
        fast = IncrementalInference(network, dtype=np.float32).run(inputs, subnet=2)
        np.testing.assert_allclose(fast.logits, exact.logits, rtol=1e-4, atol=1e-4)
