"""Tests for the SteppingNetwork container."""

import numpy as np
import pytest

from repro.core.network import SteppingNetwork
from repro.models import lenet5, lenet_3c1l, mlp, tiny_cnn
from repro.nn.tensor import no_grad


@pytest.fixture
def network(tiny_spec, rng):
    return SteppingNetwork(tiny_spec, num_subnets=3, rng=rng)


class TestConstruction:
    def test_parametric_layer_count_matches_spec(self, network, tiny_spec):
        assert len(network.param_layers) == len(tiny_spec.parametric_layers())

    def test_output_layer_is_frozen_and_additive(self, network):
        assert network.output_layer.assignment.frozen
        assert not network.output_layer.enforce_incremental

    def test_hidden_layers_enforce_incremental_by_default(self, network):
        for layer in network.param_layers[:-1]:
            assert layer.enforce_incremental

    def test_invalid_subnet_count(self, tiny_spec):
        with pytest.raises(ValueError):
            SteppingNetwork(tiny_spec, num_subnets=0)

    def test_mlp_spec_builds_without_conv_blocks(self, mlp_spec, rng):
        network = SteppingNetwork(mlp_spec, num_subnets=2, rng=rng)
        kinds = {block.kind for block in network.blocks}
        assert "conv" not in kinds

    def test_lenet5_and_lenet3c1l_build(self, rng):
        for spec in (lenet_3c1l(width_scale=0.25, input_shape=(3, 16, 16)),
                     lenet5(width_scale=1.0, input_shape=(3, 24, 24))):
            network = SteppingNetwork(spec, num_subnets=4, rng=rng)
            assert network.num_subnets == 4

    def test_describe_lists_all_layers(self, network):
        text = network.describe()
        for layer in network.param_layers:
            assert layer.layer_name in text


class TestInputUnitSubnet:
    def test_first_layer_inputs_always_active(self, network):
        first_param = network.parametric_blocks()[0].param_index
        np.testing.assert_array_equal(network.input_unit_subnet(first_param), np.zeros(3, int))

    def test_flatten_expansion_repeats_channel_assignment(self, network):
        # The first linear layer after flatten sees H*W features per conv filter.
        linear_block = [b for b in network.parametric_blocks() if b.kind == "linear"][0]
        conv_block = [b for b in network.parametric_blocks() if b.kind == "conv"][-1]
        conv_layer = conv_block.layer
        conv_layer.assignment.move_units([0], 2)
        in_subnet = network.input_unit_subnet(linear_block.param_index)
        expansion = linear_block.in_expansion
        assert in_subnet.shape[0] == conv_layer.assignment.num_units * expansion
        np.testing.assert_array_equal(in_subnet[:expansion], np.full(expansion, 2))

    def test_unknown_param_index(self, network):
        with pytest.raises(IndexError):
            network.input_unit_subnet(99)


class TestForward:
    def test_logits_shape_per_subnet(self, network, image_batch):
        x, _ = image_batch
        for subnet in range(network.num_subnets):
            logits = network.forward(x, subnet=subnet)
            assert logits.shape == (x.shape[0], 4)

    def test_default_subnet_is_largest(self, network, image_batch):
        x, _ = image_batch
        network.eval()
        with no_grad():
            default = network.forward(x).data
            largest = network.forward(x, subnet=network.num_subnets - 1).data
        np.testing.assert_allclose(default, largest)

    def test_out_of_range_subnet(self, network, image_batch):
        x, _ = image_batch
        with pytest.raises(IndexError):
            network.forward(x, subnet=7)

    def test_conv_network_rejects_flat_input(self, network):
        with pytest.raises(ValueError):
            network.forward(np.zeros((2, 10)), subnet=0)

    def test_return_cache_contains_every_parametric_block(self, network, image_batch):
        x, _ = image_batch
        network.eval()
        with no_grad():
            _, cache = network.forward(x, subnet=1, return_cache=True)
        assert set(cache) == {b.param_index for b in network.parametric_blocks()}

    def test_moving_a_unit_removes_it_from_the_small_subnet(self, network, image_batch):
        """Moving a filter out of subnet 0 changes subnet-0 logits.

        Note that the largest subnet's output generally changes as well:
        per the paper, the moved neuron's synapses into neurons that stay
        in the smaller subnet are removed permanently, for every subnet.
        """
        x, _ = image_batch
        network.eval()
        with no_grad():
            before_small = network.forward(x, subnet=0).data.copy()
        network.param_layers[0].assignment.move_units([1], 1)
        with no_grad():
            after_small = network.forward(x, subnet=0).data
        assert not np.allclose(before_small, after_small)

    def test_moved_unit_keeps_contributing_to_larger_subnets(self, network, image_batch):
        """A filter moved to subnet 1 is still executed by subnets 1 and 2."""
        x, _ = image_batch
        layer = network.param_layers[0]
        layer.assignment.move_units([1], 1)
        network.eval()
        with no_grad():
            _, cache = network.forward(x, subnet=1, return_cache=True)
        assert np.abs(cache[0][:, 1]).sum() > 0

    def test_mlp_forward_accepts_2d_input(self, mlp_spec, rng):
        network = SteppingNetwork(mlp_spec, num_subnets=2, rng=rng)
        logits = network.forward(np.zeros((3, 16)), subnet=0)
        assert logits.shape == (3, 4)


class TestMacAccounting:
    def test_macs_monotone_in_subnet_index(self, network):
        macs = [network.subnet_macs(i) for i in range(network.num_subnets)]
        assert macs == sorted(macs)

    def test_initial_macs_equal_dense_network(self, network, tiny_spec):
        # All units start in subnet 0, so every subnet is the full network.
        assert network.subnet_macs(0) == tiny_spec.total_macs()

    def test_moving_units_reduces_small_subnet_macs(self, network):
        before_small = network.subnet_macs(0)
        before_large = network.subnet_macs(2)
        network.param_layers[0].assignment.move_units([0, 1], 1)
        assert network.subnet_macs(0) < before_small
        # The largest subnet may also lose a few MACs: synapses from the
        # moved filters into units that stay in subnet 0 are removed for
        # every subnet (paper Sec. III-A1), but it never loses more than
        # the small subnet did.
        assert network.subnet_macs(2) <= before_large
        assert (before_large - network.subnet_macs(2)) <= (before_small - network.subnet_macs(0))

    def test_layer_macs_keys_are_layer_names(self, network):
        macs = network.layer_macs(0)
        assert set(macs) == {layer.layer_name for layer in network.param_layers}

    def test_mac_fractions_against_reference(self, network, tiny_spec):
        fractions = network.mac_fractions(reference_macs=tiny_spec.total_macs())
        assert fractions[0] == pytest.approx(1.0)

    def test_importance_scales_empty_without_collection(self, network, image_batch):
        x, _ = image_batch
        network.forward(x, subnet=0)
        assert network.importance_scales() == {}
