"""Tests for knowledge-distillation retraining (Eq. 4, Sec. III-B)."""

import numpy as np
import pytest

from repro.core.config import SteppingConfig, TrainingConfig
from repro.core.distillation import retrain_with_distillation
from repro.core.network import SteppingNetwork
from repro.core.trainer import evaluate_all_subnets, train_plain_model
from repro.models import build_plain_model


@pytest.fixture
def config():
    return SteppingConfig(
        mac_budgets=(0.2, 0.5, 0.8, 0.95),
        num_iterations=2,
        batches_per_iteration=1,
        retrain_epochs=2,
        training=TrainingConfig(learning_rate=0.05, batch_size=16),
    )


@pytest.fixture
def network(tiny_spec, rng):
    return SteppingNetwork(tiny_spec, num_subnets=4, rng=rng)


@pytest.fixture
def teacher(tiny_spec, image_loader):
    model = build_plain_model(tiny_spec, rng=np.random.default_rng(1))
    train_plain_model(model, image_loader, epochs=4, training=TrainingConfig(learning_rate=0.05))
    return model


class TestRetraining:
    def test_improves_subnet_accuracy(self, network, teacher, image_loader, config):
        before = evaluate_all_subnets(network, image_loader)
        retrain_with_distillation(network, teacher, image_loader, config, epochs=4)
        after = evaluate_all_subnets(network, image_loader)
        assert np.mean(after) > np.mean(before)

    def test_records_one_history_entry_per_epoch(self, network, teacher, image_loader, config):
        result = retrain_with_distillation(network, teacher, image_loader, config, epochs=3)
        assert result.epochs == 3
        assert len(result.history) == 3

    def test_loss_decreases_over_epochs(self, network, teacher, image_loader, config):
        result = retrain_with_distillation(network, teacher, image_loader, config, epochs=4)
        losses = result.history.series("loss")
        assert losses[-1] < losses[0]

    def test_none_teacher_falls_back_to_cross_entropy(self, network, image_loader, config):
        result = retrain_with_distillation(network, None, image_loader, config, epochs=1)
        assert len(result.history) == 1

    def test_use_distillation_false_ignores_teacher(self, network, teacher, image_loader, config):
        no_kd = config.with_overrides(use_distillation=False)
        result = retrain_with_distillation(network, teacher, image_loader, no_kd, epochs=1)
        assert len(result.history) == 1

    def test_eval_loader_populates_final_accuracies(self, network, teacher, image_loader, config):
        result = retrain_with_distillation(
            network, teacher, image_loader, config, epochs=1, eval_loader=image_loader
        )
        assert len(result.final_accuracies) == network.num_subnets

    def test_default_epochs_taken_from_config(self, network, teacher, image_loader, config):
        result = retrain_with_distillation(network, teacher, image_loader, config)
        assert result.epochs == config.retrain_epochs

    def test_structures_unchanged_by_retraining(self, network, teacher, image_loader, config):
        assignments_before = [layer.assignment.unit_subnet.copy() for layer in network.param_layers]
        retrain_with_distillation(network, teacher, image_loader, config, epochs=1)
        for layer, before in zip(network.param_layers, assignments_before):
            np.testing.assert_array_equal(layer.assignment.unit_subnet, before)
