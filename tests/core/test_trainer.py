"""Tests for shared training utilities and learning-rate suppression."""

import numpy as np
import pytest

from repro.core.config import TrainingConfig
from repro.core.network import SteppingNetwork
from repro.core.trainer import (
    apply_lr_suppression,
    evaluate_all_subnets,
    evaluate_plain_model,
    evaluate_subnet,
    make_optimizer,
    suppression_factors,
    train_plain_model,
    train_subnets_round,
)
from repro.data import DataLoader
from repro.models import build_plain_model
from repro.nn.losses import CrossEntropyLoss


@pytest.fixture
def network(tiny_spec, rng):
    return SteppingNetwork(tiny_spec, num_subnets=3, rng=rng)


class TestSuppressionFactors:
    def test_exponent_matches_paper_formula(self):
        factors = suppression_factors(np.array([0, 1, 2]), training_subnet=2, beta=0.9)
        np.testing.assert_allclose(factors, [0.81, 0.9, 1.0])

    def test_units_of_current_or_larger_subnet_unscaled(self):
        factors = suppression_factors(np.array([2, 3]), training_subnet=1, beta=0.5)
        np.testing.assert_allclose(factors, [1.0, 1.0])

    def test_beta_one_is_identity(self):
        factors = suppression_factors(np.array([0, 1]), 3, beta=1.0)
        np.testing.assert_allclose(factors, [1.0, 1.0])


class TestApplyLrSuppression:
    def test_scales_hidden_weight_gradients_by_unit_owner(self, network, image_batch):
        x, y = image_batch
        layer = network.param_layers[0]
        layer.assignment.move_units([0], 1)  # filter 0 now belongs to subnet 1
        logits = network.forward(x, subnet=2)
        CrossEntropyLoss()(logits, y).backward()
        grad_before = layer.weight.grad.copy()
        apply_lr_suppression(network, training_subnet=2, beta=0.5)
        # Filter 0 (subnet 1): scaled by 0.5; filter 1 (subnet 0): scaled by 0.25.
        np.testing.assert_allclose(layer.weight.grad[0], grad_before[0] * 0.5)
        np.testing.assert_allclose(layer.weight.grad[1], grad_before[1] * 0.25)

    def test_beta_one_leaves_gradients_unchanged(self, network, image_batch):
        x, y = image_batch
        logits = network.forward(x, subnet=1)
        CrossEntropyLoss()(logits, y).backward()
        grads_before = [p.grad.copy() for p in network.parameters() if p.grad is not None]
        apply_lr_suppression(network, training_subnet=1, beta=1.0)
        grads_after = [p.grad for p in network.parameters() if p.grad is not None]
        for before, after in zip(grads_before, grads_after):
            np.testing.assert_allclose(before, after)

    def test_output_layer_columns_scaled_by_input_feature_owner(self, network, image_batch):
        x, y = image_batch
        last_conv_block = [b for b in network.parametric_blocks() if b.kind == "conv"][-1]
        # Hidden layer feeding the classifier through flatten:
        classifier_block = network.parametric_blocks()[-1]
        feeder = network.param_layers[classifier_block.prev_param_index]
        feeder.assignment.move_units([0], 1)
        logits = network.forward(x, subnet=2)
        CrossEntropyLoss()(logits, y).backward()
        classifier = network.output_layer
        grad_before = classifier.weight.grad.copy()
        apply_lr_suppression(network, training_subnet=2, beta=0.5)
        in_subnet = network.input_unit_subnet(classifier_block.param_index)
        expected_factors = np.power(0.5, np.maximum(2 - in_subnet, 0))
        np.testing.assert_allclose(classifier.weight.grad, grad_before * expected_factors[None, :])


class TestTrainingLoops:
    def test_train_subnets_round_reduces_loss(self, network, image_loader):
        optimizer = make_optimizer(network, TrainingConfig(learning_rate=0.05))
        first = train_subnets_round(network, image_loader, optimizer, num_batches=2, beta=0.9)
        second = train_subnets_round(network, image_loader, optimizer, num_batches=2, beta=0.9)
        assert second < first

    def test_train_subnets_round_returns_mean_loss(self, network, image_loader):
        optimizer = make_optimizer(network, TrainingConfig())
        loss = train_subnets_round(network, image_loader, optimizer, num_batches=1)
        assert np.isfinite(loss) and loss > 0

    def test_train_plain_model_improves_accuracy(self, tiny_spec, image_dataset):
        loader = DataLoader(image_dataset, batch_size=16, shuffle=True, seed=0)
        model = build_plain_model(tiny_spec, rng=np.random.default_rng(0))
        before = evaluate_plain_model(model, loader)
        train_plain_model(model, loader, epochs=8, training=TrainingConfig(learning_rate=0.05))
        after = evaluate_plain_model(model, loader)
        assert after > before

    def test_make_optimizer_covers_all_parameters(self, network):
        optimizer = make_optimizer(network, TrainingConfig())
        count = sum(len(group["params"]) for group in optimizer.param_groups)
        assert count == len(list(network.parameters()))


class TestEvaluation:
    def test_evaluate_subnet_range(self, network, image_loader):
        accuracy = evaluate_subnet(network, image_loader, subnet=0)
        assert 0.0 <= accuracy <= 1.0

    def test_evaluate_all_subnets_length(self, network, image_loader):
        accuracies = evaluate_all_subnets(network, image_loader)
        assert len(accuracies) == network.num_subnets

    def test_evaluation_restores_training_flag(self, network, image_loader):
        network.train()
        evaluate_subnet(network, image_loader, subnet=0)
        assert network.training

    def test_evaluate_plain_model_range(self, tiny_spec, image_loader):
        model = build_plain_model(tiny_spec)
        accuracy = evaluate_plain_model(model, image_loader)
        assert 0.0 <= accuracy <= 1.0
