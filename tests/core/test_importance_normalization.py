"""Tests for the cross-layer importance-score normalisation (DESIGN.md §7)."""

import numpy as np
import pytest

from repro.core import SteppingConfig
from repro.core.construction import SubnetConstructor
from repro.core.importance import ImportanceResult, evaluate_importance


class TestSelectionScoreNormalization:
    def _result(self):
        # Two layers with wildly different raw gradient magnitudes, as a
        # conv layer and an FC layer would produce.
        per_subnet = [
            {0: np.array([100.0, 300.0, 200.0]), 1: np.array([0.001, 0.003, 0.002])},
            {0: np.array([10.0, 30.0, 20.0]), 1: np.array([0.0001, 0.0003, 0.0002])},
        ]
        return ImportanceResult(per_subnet=per_subnet, alphas=[1.0, 1.5])

    def test_raw_scores_are_scale_dominated(self):
        scores = self._result().selection_scores(0, normalize=False)
        assert scores[0].min() > scores[1].max()

    def test_normalized_scores_are_comparable_across_layers(self):
        scores = self._result().selection_scores(0, normalize=True)
        assert scores[0].mean() == pytest.approx(1.0)
        assert scores[1].mean() == pytest.approx(1.0)
        # The within-layer ordering is preserved by the rescaling.
        assert list(np.argsort(scores[0])) == [0, 2, 1]
        assert list(np.argsort(scores[1])) == [0, 2, 1]

    def test_normalization_preserves_relative_ranking_within_layer(self):
        raw = self._result().selection_scores(0, normalize=False)
        normalized = self._result().selection_scores(0, normalize=True)
        for layer in raw:
            assert list(np.argsort(raw[layer])) == list(np.argsort(normalized[layer]))

    def test_all_zero_layer_left_unchanged(self):
        result = ImportanceResult(
            per_subnet=[{0: np.zeros(3), 1: np.array([1.0, 2.0, 3.0])}], alphas=[1.0]
        )
        scores = result.selection_scores(0, normalize=True)
        np.testing.assert_array_equal(scores[0], np.zeros(3))

    def test_default_is_unnormalized(self):
        raw = self._result().selection_scores(0)
        explicit = self._result().selection_scores(0, normalize=False)
        for layer in raw:
            np.testing.assert_array_equal(raw[layer], explicit[layer])


class TestConfigFlag:
    def test_enabled_by_default(self):
        assert SteppingConfig().normalize_importance is True

    def test_can_be_disabled(self):
        config = SteppingConfig(normalize_importance=False)
        assert config.normalize_importance is False

    def test_with_overrides_round_trip(self):
        config = SteppingConfig().with_overrides(normalize_importance=False)
        assert config.normalize_importance is False


class TestConstructionEffect:
    @pytest.fixture
    def importance(self, stepping_network, image_batch):
        inputs, labels = image_batch
        return evaluate_importance(stepping_network, inputs, labels)

    def test_evaluate_importance_covers_all_layers(self, stepping_network, importance):
        hidden = [b for b in stepping_network.parametric_blocks()]
        scores = importance.selection_scores(0, normalize=True)
        # Every parametric layer with importance scales recorded is present.
        assert set(scores) <= {block.param_index for block in hidden}
        assert scores

    def test_normalized_construction_keeps_layers_balanced(
        self, stepping_network, stepping_config, image_loader
    ):
        """With normalisation no hidden layer collapses to the floor while
        another keeps most of its units in the smallest subnet."""
        constructor = SubnetConstructor(
            stepping_network,
            stepping_config.with_overrides(normalize_importance=True),
            image_loader,
            reference_macs=stepping_network.total_macs(),
        )
        constructor.run()
        counts = [
            block.layer.assignment.active_count(0)
            for block in stepping_network.parametric_blocks()
            if not block.is_output
        ]
        fractions = [
            count / block.layer.assignment.num_units
            for count, block in zip(
                counts,
                [b for b in stepping_network.parametric_blocks() if not b.is_output],
            )
        ]
        # No hidden layer is drained to (almost) nothing while another stays
        # (almost) dense — the pathology the normalisation removes.
        assert max(fractions) - min(fractions) < 0.9
