"""Suspend/resume round-trips of the compiled plan's ``aux`` buffers.

The incremental column/pooling buffers live in ``InferenceState.aux``
and move with ``export_state``/``import_state`` like the activation
caches — but unlike the caches they are *pure caches* with a validity
tag: stale buffers (state advanced through another path in between)
must self-invalidate and rebuild rather than corrupt the next step.
These tests pin that contract across suspend/resume, across engines,
across backends (stepping <-> recompute) and across the compiled/legacy
boundary.
"""

import numpy as np
import pytest

from repro.core import IncrementalInference, NetworkPlan
from repro.serving.backend import RecomputeBackend, SteppingBackend


@pytest.fixture
def eval_network(stepping_network, image_batch):
    """The shared tiny conv network, BN-warmed and in eval mode."""
    from repro.baselines.common import set_prefix_assignments

    set_prefix_assignments(stepping_network, [0.25, 0.5, 0.75, 1.0])
    stepping_network.assignment.validate()
    images, _ = image_batch
    stepping_network.train()
    stepping_network.forward(images, subnet=stepping_network.num_subnets - 1)
    stepping_network.eval()
    return stepping_network


@pytest.fixture
def inputs(image_batch):
    images, _ = image_batch
    return images[:3]


def _reference_logits(network, inputs, dtype=np.float64):
    """Uninterrupted compiled stepping: one engine, one context."""
    engine = IncrementalInference(network, dtype=dtype, compiled=True)
    logits = [engine.run(inputs, subnet=0).logits]
    for level in range(1, network.num_subnets):
        logits.append(engine.step_to(level).logits)
    return logits


class TestAuxRoundTrip:
    def test_suspend_resume_preserves_aux_buffers(self, eval_network, inputs):
        reference = _reference_logits(eval_network, inputs)
        engine = IncrementalInference(eval_network, compiled=True)
        assert np.array_equal(engine.run(inputs, subnet=0).logits, reference[0])
        state = engine.export_state()
        # The plan's private buffers travelled with the state and carry
        # the level tag of the last advance.
        assert state.aux["level"] == 0
        assert any(isinstance(key, tuple) and key[0] == "cols" for key in state.aux)
        engine.import_state(state)
        for level in range(1, eval_network.num_subnets):
            assert np.array_equal(engine.step_to(level).logits, reference[level])

    def test_state_moves_between_engines(self, eval_network, inputs):
        """A second engine picks up mid-flight state (and its aux) exactly."""
        reference = _reference_logits(eval_network, inputs)
        first = IncrementalInference(eval_network, compiled=True)
        first.run(inputs, subnet=0)
        first.step_to(1)
        state = first.export_state()
        aux_before = {key: value for key, value in state.aux.items()}
        second = IncrementalInference(eval_network, compiled=True)
        second.import_state(state)
        # Imports move references, not copies: O(1) context switch.
        for key, value in aux_before.items():
            assert second._aux[key] is value
        assert np.array_equal(second.step_to(2).logits, reference[2])
        assert np.array_equal(second.step_to(3).logits, reference[3])

    def test_interleaved_contexts_keep_private_aux(self, eval_network, inputs):
        """Two suspended contexts never share or clobber buffers."""
        reference_a = _reference_logits(eval_network, inputs)
        other = inputs[::-1].copy()
        reference_b = _reference_logits(eval_network, other)
        engine = IncrementalInference(eval_network, compiled=True)

        engine.run(inputs, subnet=0)
        state_a = engine.export_state()
        engine.run(other, subnet=0)
        state_b = engine.export_state()
        for level in range(1, eval_network.num_subnets):
            engine.import_state(state_a)
            assert np.array_equal(engine.step_to(level).logits, reference_a[level])
            state_a = engine.export_state()
            engine.import_state(state_b)
            assert np.array_equal(engine.step_to(level).logits, reference_b[level])
            state_b = engine.export_state()

    def test_state_crosses_backends(self, eval_network, inputs):
        """stepping -> recompute -> stepping: one in-flight inference.

        The two serving backends differ only in their charged-cost
        model; their engines share the InferenceState layout, so a
        request suspended on one can resume on the other with its aux
        buffers intact.
        """
        dtype = np.float64
        reference = _reference_logits(eval_network, inputs, dtype=dtype)
        stepping = SteppingBackend(eval_network, dtype=dtype)
        recompute = RecomputeBackend(eval_network, dtype=dtype)

        session = stepping.open(inputs)
        assert np.array_equal(session.advance().logits, reference[0])
        session.suspend()
        state = session._state
        assert state.aux["level"] == 0

        recompute._engine.import_state(state)
        step = recompute._engine.step_to(1)
        assert np.array_equal(step.logits, reference[1])
        state = recompute._engine.export_state()

        stepping._engine.import_state(state)
        for level in (2, 3):
            assert np.array_equal(stepping._engine.step_to(level).logits, reference[level])

    def test_stale_aux_self_invalidates_after_legacy_detour(self, eval_network, inputs):
        """compiled -> legacy -> compiled: lagging buffers must rebuild.

        The legacy path advances the cache but not the plan's aux
        buffers; on re-import the compiled path must notice the level
        tag mismatch, drop the stale buffers and repack from the cache
        instead of serving stale columns.
        """
        # The legacy path applies batch norm explicitly while the plan
        # folds it into the weights: equal up to float associativity,
        # not bit-equal — compare the detour and everything after it
        # with float64 tolerances.
        close = dict(rtol=1e-9, atol=1e-10)
        reference = _reference_logits(eval_network, inputs)
        compiled = IncrementalInference(eval_network, compiled=True)
        compiled.run(inputs, subnet=0)
        state = compiled.export_state()
        assert state.aux["level"] == 0

        legacy = IncrementalInference(eval_network, compiled=False)
        legacy.import_state(state)
        np.testing.assert_allclose(legacy.step_to(1).logits, reference[1], **close)
        state = legacy.export_state()
        # The detour advanced the cache to level 1; aux still says 0.
        assert state.aux.get("level") == 0

        compiled.import_state(state)
        np.testing.assert_allclose(compiled.step_to(2).logits, reference[2], **close)
        # Buffers were rebuilt and re-tagged at the new level.
        assert compiled._aux["level"] == 2
        np.testing.assert_allclose(compiled.step_to(3).logits, reference[3], **close)

    def test_legacy_state_enters_compiled_path_without_aux(self, eval_network, inputs):
        """States born on the legacy path (empty aux) are always valid."""
        reference = _reference_logits(eval_network, inputs)
        legacy = IncrementalInference(eval_network, compiled=False)
        legacy.run(inputs, subnet=0)
        legacy.step_to(1)
        state = legacy.export_state()
        assert "level" not in state.aux

        compiled = IncrementalInference(eval_network, compiled=True)
        compiled.import_state(state)
        np.testing.assert_allclose(
            compiled.step_to(2).logits, reference[2], rtol=1e-9, atol=1e-10
        )
        assert compiled._aux["level"] == 2

    def test_state_copy_isolates_aux(self, eval_network, inputs):
        """copy() must deep-copy aux arrays, not alias the live buffers."""
        engine = IncrementalInference(eval_network, compiled=True)
        engine.run(inputs, subnet=0)
        state = engine.export_state()
        snapshot = state.copy()
        engine.import_state(state)
        engine.step_to(eval_network.num_subnets - 1)
        for key, value in snapshot.aux.items():
            if isinstance(value, np.ndarray):
                live = engine._aux.get(key)
                assert live is None or value is not live
        # The snapshot still resumes from its own level correctly.
        fresh = IncrementalInference(eval_network, compiled=True)
        fresh.import_state(snapshot)
        reference = _reference_logits(eval_network, inputs)
        assert np.array_equal(fresh.step_to(1).logits, reference[1])
