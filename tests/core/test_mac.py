"""Tests for MAC reporting."""

import numpy as np
import pytest

from repro.core.mac import MacReport, dense_macs, mac_report
from repro.core.network import SteppingNetwork


@pytest.fixture
def network(tiny_spec, rng):
    net = SteppingNetwork(tiny_spec.expand(1.5), num_subnets=3, rng=rng)
    for block in net.parametric_blocks():
        if block.is_output:
            continue
        units = block.layer.assignment.num_units
        assignment = np.zeros(units, dtype=int)
        assignment[units // 3: 2 * units // 3] = 1
        assignment[2 * units // 3:] = 2
        block.layer.assignment.set_assignment(assignment)
    return net


class TestMacReport:
    def test_fractions_relative_to_reference_spec(self, network, tiny_spec):
        report = mac_report(network, reference_spec=tiny_spec)
        assert report.reference_macs == tiny_spec.total_macs()
        assert len(report.fractions) == 3

    def test_default_reference_is_expanded_network(self, network):
        report = mac_report(network)
        assert report.fractions[-1] == pytest.approx(1.0)

    def test_incremental_macs_sum_to_largest(self, network):
        report = mac_report(network)
        assert sum(report.incremental_macs()) == report.subnet_macs[-1]

    def test_within_budgets(self, network):
        report = mac_report(network)
        generous = [f + 0.05 for f in report.fractions]
        tight = [f - 0.05 for f in report.fractions]
        assert report.within_budgets(generous)
        assert not report.within_budgets(tight)

    def test_within_budgets_length_check(self, network):
        report = mac_report(network)
        with pytest.raises(ValueError):
            report.within_budgets([0.5])

    def test_as_rows_format(self, network):
        rows = mac_report(network).as_rows()
        assert rows[0]["subnet"] == 1
        assert set(rows[0]) == {"subnet", "macs", "mac_fraction"}

    def test_per_layer_totals_match_subnet_macs(self, network):
        report = mac_report(network)
        for subnet, per_layer in enumerate(report.per_layer):
            assert sum(per_layer.values()) == report.subnet_macs[subnet]


class TestDenseMacs:
    def test_matches_spec(self, tiny_spec):
        assert dense_macs(tiny_spec) == tiny_spec.total_macs()
