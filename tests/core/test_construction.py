"""Tests for the neuron-reallocation construction flow (Fig. 3)."""

import numpy as np
import pytest

from repro.core.config import SteppingConfig, TrainingConfig
from repro.core.construction import SubnetConstructor
from repro.core.network import SteppingNetwork


@pytest.fixture
def config():
    # The smallest budget must stay above the structural floor of the tiny
    # test network: with min_units_per_layer=1 the cheapest possible subnet
    # (one filter/neuron per layer) already costs ~16 % of the reference MACs.
    return SteppingConfig(
        mac_budgets=(0.2, 0.45, 0.7, 0.9),
        expansion_ratio=1.5,
        num_iterations=6,
        batches_per_iteration=1,
        retrain_epochs=1,
        teacher_epochs=1,
        training=TrainingConfig(learning_rate=0.05, batch_size=16),
    )


@pytest.fixture
def constructor(tiny_spec, config, image_loader, rng):
    network = SteppingNetwork(
        tiny_spec.expand(config.expansion_ratio), num_subnets=4, rng=rng
    )
    return SubnetConstructor(
        network, config, image_loader, reference_macs=tiny_spec.total_macs()
    )


class TestSetup:
    def test_targets_relative_to_reference(self, constructor, tiny_spec, config):
        expected = [int(round(frac * tiny_spec.total_macs())) for frac in config.mac_budgets]
        assert constructor.mac_targets == expected

    def test_macs_per_move_spreads_over_iterations(self, constructor, config):
        expected = (constructor.total_macs - constructor.mac_targets[0]) / config.num_iterations
        assert constructor.macs_per_move == pytest.approx(expected)

    def test_subnet_count_mismatch_rejected(self, tiny_spec, config, image_loader, rng):
        network = SteppingNetwork(tiny_spec, num_subnets=3, rng=rng)
        with pytest.raises(ValueError):
            SubnetConstructor(network, config, image_loader)


class TestRun:
    def test_budgets_satisfied_and_nesting_kept(self, constructor):
        result = constructor.run()
        network = constructor.network
        assert result.satisfied
        macs = [network.subnet_macs(i) for i in range(network.num_subnets)]
        for value, target in zip(macs, constructor.mac_targets):
            assert value <= target
        network.assignment.validate()

    def test_macs_shrink_monotonically_over_iterations(self, constructor):
        result = constructor.run()
        subnet0 = [record.subnet_macs[0] for record in result.iterations]
        assert all(b <= a for a, b in zip(subnet0, subnet0[1:]))

    def test_every_layer_keeps_minimum_units_in_smallest_subnet(self, constructor):
        constructor.run()
        for block in constructor.network.parametric_blocks():
            if block.is_output:
                continue
            assert block.layer.assignment.active_count(0) >= 1

    def test_spacing_rule_prevents_premature_moves(self, tiny_spec, image_loader, rng):
        """Units must not flow out of subnet i before subnet i-1 has shed enough MACs.

        With many iterations the per-iteration quota is small, so after the
        first reallocation pass the headroom of subnet 1 over subnet 0 is
        still below the budget gap and only subnet 0 may give units away.
        """
        config = SteppingConfig(
            mac_budgets=(0.15, 0.4, 0.7, 0.9),
            expansion_ratio=1.5,
            num_iterations=200,
            batches_per_iteration=1,
        )
        network = SteppingNetwork(tiny_spec.expand(1.5), num_subnets=4, rng=rng)
        constructor = SubnetConstructor(
            network, config, image_loader, reference_macs=tiny_spec.total_macs()
        )
        importance = constructor._importance_snapshot()
        moved = constructor._reallocate_units(importance)
        assert set(moved) <= {0}
        assert 0 in moved

    def test_spacing_rule_can_be_bypassed_for_trimming(self, constructor):
        importance = constructor._importance_snapshot()
        moved = constructor._reallocate_units(importance, respect_spacing=False, uncapped=True)
        # Without the spacing rule every over-budget subnet may shed units.
        assert 0 in moved

    def test_history_records_every_iteration(self, constructor):
        result = constructor.run()
        assert len(constructor.history) == result.num_iterations
        assert result.num_iterations >= 1

    def test_final_macs_property(self, constructor):
        result = constructor.run()
        assert result.final_macs() == result.iterations[-1].subnet_macs

    def test_moved_units_counted(self, constructor):
        result = constructor.run()
        assert sum(sum(record.moved_units.values()) for record in result.iterations) > 0

    def test_output_layer_never_loses_units(self, constructor):
        constructor.run()
        output = constructor.network.output_layer
        assert output.assignment.active_count(0) == output.assignment.num_units

    def test_early_stop_when_budgets_met(self, tiny_spec, image_loader, rng):
        """With generous budgets the loop stops as soon as they are satisfied."""
        config = SteppingConfig(
            mac_budgets=(0.97, 0.98, 0.99, 1.0),
            expansion_ratio=1.0,
            num_iterations=20,
            batches_per_iteration=1,
        )
        network = SteppingNetwork(tiny_spec, num_subnets=4, rng=rng)
        constructor = SubnetConstructor(
            network, config, image_loader, reference_macs=tiny_spec.total_macs()
        )
        result = constructor.run()
        assert result.satisfied
        assert result.num_iterations < config.num_iterations


class TestStructuralInvariant:
    def test_no_new_to_old_synapse_after_construction(self, constructor):
        """The paper's structural rule holds for every pair of adjacent layers."""
        constructor.run()
        network = constructor.network
        for block in network.parametric_blocks():
            if block.is_output:
                continue
            layer = block.layer
            in_subnet = network.input_unit_subnet(block.param_index)
            for subnet in range(network.num_subnets):
                if block.kind == "conv":
                    mask = layer.channel_mask(subnet, in_subnet)[..., 0, 0]
                else:
                    mask = layer.weight_mask(subnet, in_subnet)
                out_subnet = layer.assignment.unit_subnet
                violating = mask * (in_subnet[None, :] > out_subnet[:, None])
                assert violating.sum() == 0
