"""Tests for importance evaluation (Eq. 1-3)."""

import numpy as np
import pytest

from repro.core.importance import ImportanceResult, evaluate_importance, magnitude_importance
from repro.core.network import SteppingNetwork


@pytest.fixture
def network(tiny_spec, rng):
    return SteppingNetwork(tiny_spec, num_subnets=3, rng=rng)


class TestSelectionScores:
    def test_aggregation_over_larger_subnets(self):
        per_subnet = [
            {0: np.array([1.0, 2.0])},
            {0: np.array([10.0, 20.0])},
            {0: np.array([100.0, 200.0])},
        ]
        result = ImportanceResult(per_subnet=per_subnet, alphas=[1.0, 2.0, 4.0])
        # For subnet 0: 1*g0 + 2*g1 + 4*g2.
        np.testing.assert_allclose(result.selection_scores(0)[0], [421.0, 842.0])
        # For subnet 1: 2*g1 + 4*g2.
        np.testing.assert_allclose(result.selection_scores(1)[0], [420.0, 840.0])
        # For subnet 2: only its own contribution.
        np.testing.assert_allclose(result.selection_scores(2)[0], [400.0, 800.0])

    def test_out_of_range_subnet(self):
        result = ImportanceResult(per_subnet=[{0: np.zeros(2)}], alphas=[1.0])
        with pytest.raises(IndexError):
            result.selection_scores(3)


class TestEvaluateImportance:
    def test_shapes_and_nonnegativity(self, network, image_batch):
        x, y = image_batch
        result = evaluate_importance(network, x, y, alphas=[1.0, 1.5, 2.25])
        assert len(result.per_subnet) == 3
        for grads in result.per_subnet:
            for param_index, values in grads.items():
                assert values.shape == (network.param_layers[param_index].assignment.num_units,)
                assert (values >= 0).all()

    def test_default_alphas_are_uniform(self, network, image_batch):
        x, y = image_batch
        result = evaluate_importance(network, x, y)
        assert result.alphas == [1.0, 1.0, 1.0]

    def test_wrong_alpha_length_rejected(self, network, image_batch):
        x, y = image_batch
        with pytest.raises(ValueError):
            evaluate_importance(network, x, y, alphas=[1.0])

    def test_inactive_units_have_zero_importance(self, network, image_batch):
        x, y = image_batch
        layer = network.param_layers[0]
        layer.assignment.move_units([0], 2)
        result = evaluate_importance(network, x, y)
        # In subnet 0 and 1 the moved filter is inactive, so its gradient is zero.
        assert result.per_subnet[0][0][0] == pytest.approx(0.0)
        assert result.per_subnet[1][0][0] == pytest.approx(0.0)
        # In subnet 2 it participates and (generically) receives gradient.
        assert result.per_subnet[2][0][0] >= 0.0

    def test_importance_is_generically_nonzero(self, network, image_batch):
        x, y = image_batch
        result = evaluate_importance(network, x, y)
        total = sum(values.sum() for grads in result.per_subnet for values in grads.values())
        assert total > 0.0

    def test_does_not_leave_parameter_gradients_behind(self, network, image_batch):
        x, y = image_batch
        evaluate_importance(network, x, y)
        assert all(p.grad is None for p in network.parameters())

    def test_restores_training_mode(self, network, image_batch):
        x, y = image_batch
        network.train()
        evaluate_importance(network, x, y)
        assert network.training
        network.eval()
        evaluate_importance(network, x, y)
        assert not network.training

    def test_does_not_perturb_batchnorm_running_stats(self, network, image_batch):
        x, y = image_batch
        stats_before = [
            block.norm.running_mean.copy()
            for block in network.parametric_blocks()
            if block.norm is not None
        ]
        evaluate_importance(network, x, y)
        stats_after = [
            block.norm.running_mean.copy()
            for block in network.parametric_blocks()
            if block.norm is not None
        ]
        for before, after in zip(stats_before, stats_after):
            np.testing.assert_allclose(before, after)


class TestMagnitudeImportance:
    def test_one_score_per_unit(self, network):
        scores = magnitude_importance(network)
        for index, layer in enumerate(network.param_layers):
            assert scores[index].shape == (layer.assignment.num_units,)
            assert (scores[index] >= 0).all()

    def test_larger_weights_score_higher(self, network):
        layer = network.param_layers[0]
        layer.weight.data[0] = 100.0
        layer.weight.data[1] = 0.0
        scores = magnitude_importance(network)
        assert scores[0][0] > scores[0][1]
