"""Property-based tests of the mask algebra underlying SteppingNet.

These are the invariants the whole design rests on:

* nesting — subnet ``i``'s weight mask is contained in subnet ``i+1``'s;
* the structural rule — no active synapse runs from a unit introduced in
  a larger subnet into a unit of a smaller subnet;
* reuse — the rows of old units are identical in every subnet that
  contains them, which is exactly why their activations can be cached.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.layers import build_weight_mask


def assignments(max_units=12, num_levels=4):
    """Random unit-to-subnet assignments including the unused level."""
    return st.lists(
        st.integers(0, num_levels), min_size=1, max_size=max_units
    ).map(lambda values: np.asarray(values, dtype=np.int64))


@settings(max_examples=60, deadline=None)
@given(assignments(), assignments(), st.integers(0, 3))
def test_mask_entries_are_binary(out_subnet, in_subnet, subnet):
    mask = build_weight_mask(out_subnet, in_subnet, subnet)
    assert set(np.unique(mask)).issubset({0.0, 1.0})


@settings(max_examples=60, deadline=None)
@given(assignments(), assignments())
def test_masks_nest_across_subnets(out_subnet, in_subnet):
    previous = None
    for subnet in range(4):
        mask = build_weight_mask(out_subnet, in_subnet, subnet)
        if previous is not None:
            assert np.all(previous <= mask)
        previous = mask


@settings(max_examples=60, deadline=None)
@given(assignments(), assignments(), st.integers(0, 3))
def test_structural_rule_never_violated(out_subnet, in_subnet, subnet):
    mask = build_weight_mask(out_subnet, in_subnet, subnet)
    forbidden = in_subnet[None, :] > out_subnet[:, None]
    assert np.all(mask[forbidden] == 0.0)


@settings(max_examples=60, deadline=None)
@given(assignments(), assignments(), st.integers(0, 2))
def test_old_unit_rows_identical_in_all_larger_subnets(out_subnet, in_subnet, subnet):
    """Rows of units active in `subnet` do not change when the subnet grows —
    the precondition for reusing their cached activations."""
    small = build_weight_mask(out_subnet, in_subnet, subnet)
    large = build_weight_mask(out_subnet, in_subnet, subnet + 1)
    active_rows = out_subnet <= subnet
    np.testing.assert_array_equal(small[active_rows], large[active_rows])


@settings(max_examples=60, deadline=None)
@given(assignments(), assignments(), st.integers(0, 3))
def test_inactive_units_have_empty_rows_and_columns(out_subnet, in_subnet, subnet):
    mask = build_weight_mask(out_subnet, in_subnet, subnet)
    assert np.all(mask[out_subnet > subnet, :] == 0.0)
    assert np.all(mask[:, in_subnet > subnet] == 0.0)


@settings(max_examples=60, deadline=None)
@given(assignments(), assignments(), st.integers(0, 3))
def test_disabling_structure_only_adds_entries(out_subnet, in_subnet, subnet):
    constrained = build_weight_mask(out_subnet, in_subnet, subnet, enforce_incremental=True)
    free = build_weight_mask(out_subnet, in_subnet, subnet, enforce_incremental=False)
    assert np.all(constrained <= free)


@settings(max_examples=60, deadline=None)
@given(assignments(), assignments(), st.integers(0, 3), st.data())
def test_prune_mask_only_removes_entries(out_subnet, in_subnet, subnet, data):
    rng = np.random.default_rng(data.draw(st.integers(0, 1000)))
    prune = (rng.random((out_subnet.size, in_subnet.size)) > 0.3).astype(float)
    without = build_weight_mask(out_subnet, in_subnet, subnet)
    with_prune = build_weight_mask(out_subnet, in_subnet, subnet, prune_mask=prune)
    assert np.all(with_prune <= without)
    assert np.all(with_prune <= prune)
