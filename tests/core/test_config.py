"""Tests for the SteppingNet configuration dataclasses."""

import pytest

from repro.core.config import PAPER_CONFIGS, SteppingConfig, TrainingConfig, paper_config


class TestTrainingConfig:
    def test_defaults_valid(self):
        TrainingConfig()

    @pytest.mark.parametrize("kwargs", [
        {"learning_rate": 0.0},
        {"momentum": 1.0},
        {"batch_size": 0},
    ])
    def test_invalid_values(self, kwargs):
        with pytest.raises(ValueError):
            TrainingConfig(**kwargs)


class TestSteppingConfig:
    def test_defaults_match_paper(self):
        config = SteppingConfig()
        assert config.num_subnets == 4
        assert config.beta == pytest.approx(0.9)
        assert config.gamma == pytest.approx(0.4)
        assert config.prune_threshold == pytest.approx(1e-5)
        assert config.alpha_growth == pytest.approx(1.5)

    def test_alphas_grow_by_factor(self):
        alphas = SteppingConfig().alphas()
        assert alphas[0] == pytest.approx(1.0)
        for small, large in zip(alphas, alphas[1:]):
            assert large == pytest.approx(small * 1.5)

    @pytest.mark.parametrize("kwargs", [
        {"mac_budgets": (0.5,)},                       # needs at least two subnets
        {"mac_budgets": (0.5, 0.3)},                   # not increasing
        {"mac_budgets": (0.0, 0.5)},                   # fraction out of range
        {"mac_budgets": (0.2, 1.5)},                   # fraction above one
        {"expansion_ratio": 0.0},
        {"num_iterations": 0},
        {"batches_per_iteration": 0},
        {"beta": 0.0},
        {"gamma": 1.5},
        {"alpha_growth": 0.0},
        {"min_units_per_layer": 0},
    ])
    def test_invalid_values(self, kwargs):
        with pytest.raises(ValueError):
            SteppingConfig(**kwargs)

    def test_with_overrides_returns_new_instance(self):
        config = SteppingConfig()
        other = config.with_overrides(beta=0.5)
        assert other.beta == 0.5
        assert config.beta == 0.9


class TestPaperConfigs:
    def test_all_three_networks_present(self):
        assert set(PAPER_CONFIGS) == {"lenet-3c1l", "lenet-5", "vgg-16"}

    def test_budgets_match_paper_section_iv(self):
        assert paper_config("lenet-3c1l").mac_budgets == (0.10, 0.30, 0.50, 0.85)
        assert paper_config("lenet-5").mac_budgets == (0.15, 0.30, 0.60, 0.85)
        assert paper_config("vgg-16").mac_budgets == (0.20, 0.40, 0.50, 0.70)

    def test_expansion_ratios_match_paper(self):
        assert paper_config("lenet-3c1l").expansion_ratio == pytest.approx(1.8)
        assert paper_config("lenet-5").expansion_ratio == pytest.approx(2.0)
        assert paper_config("vgg-16").expansion_ratio == pytest.approx(1.8)

    def test_unknown_network(self):
        with pytest.raises(KeyError):
            paper_config("alexnet")
