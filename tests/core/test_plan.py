"""Plan-vs-engine equivalence: the compiled fast path must reproduce the
legacy per-step-masking path and a from-scratch forward pass.

Parametrised over dtype (float32/float64), pruning on/off and model
family (conv with batch norm, plain MLP); every combination steps
through several subnet levels and checks the logits three ways:

* compiled vs legacy stepped logits (same dtype, same path shape);
* compiled stepped logits vs a from-scratch ``network.forward`` of the
  target subnet (the ground truth the paper's reuse guarantee promises);
* exact MAC accounting (plan-cached counts equal the network's).
"""

import numpy as np
import pytest

from repro.baselines.common import set_prefix_assignments
from repro.core import IncrementalInference, NetworkPlan, SteppingNetwork
from repro.core.pruning import apply_unstructured_pruning
from repro.models import mlp, tiny_cnn
from repro.nn.tensor import no_grad
from repro.serving.backend import RecomputeBackend, SteppingBackend

TOLERANCES = {
    np.dtype(np.float64): dict(rtol=1e-9, atol=1e-10),
    np.dtype(np.float32): dict(rtol=2e-3, atol=1e-4),
}


def _conv_network():
    """Conv net with batch norm, scattered assignment and warm BN stats."""
    spec = tiny_cnn(num_classes=4, input_shape=(3, 12, 12), width_scale=0.5)
    network = SteppingNetwork(spec.expand(1.5), num_subnets=4, rng=np.random.default_rng(0))
    scatter_rng = np.random.default_rng(7)
    for block in network.parametric_blocks():
        if block.is_output:
            continue
        assignment = scatter_rng.integers(0, 5, size=block.layer.assignment.num_units)
        assignment[0] = 0
        block.layer.assignment.set_assignment(assignment)
    network.assignment.validate()
    # Move the BN running statistics off their init values so folding is
    # exercised against non-trivial means/variances.
    warm = np.random.default_rng(1).standard_normal((8, 3, 12, 12))
    network.train()
    network.forward(warm, subnet=3)
    network.eval()
    return network, np.random.default_rng(2).standard_normal((6, 3, 12, 12))


def _mlp_network():
    spec = mlp(num_classes=4, input_dim=16, hidden=(12, 8))
    network = SteppingNetwork(spec, num_subnets=4, rng=np.random.default_rng(0))
    set_prefix_assignments(network, [0.3, 0.55, 0.8, 1.0])
    network.assignment.validate()
    return network, np.random.default_rng(3).standard_normal((5, 16))


def _avg_pool_tanh_network():
    """Exotic block mix: tanh, average pooling with overlapping windows
    (kernel != stride, exercising the generic pooling fallback) and a
    batch-normalised hidden linear layer."""
    from repro.models.spec import (
        ArchitectureSpec,
        ConvSpec,
        FlattenSpec,
        LinearSpec,
        PoolSpec,
    )

    spec = ArchitectureSpec(
        "avg-tanh",
        (3, 12, 12),
        4,
        (
            ConvSpec(8, kernel_size=3, padding=1, activation="tanh"),
            PoolSpec("avg", 3, stride=2),
            ConvSpec(12, kernel_size=3, padding=1, activation="relu"),
            PoolSpec("max", 2),
            FlattenSpec(),
            LinearSpec(10, batch_norm=True, activation="tanh"),
            LinearSpec(4, activation="none", is_output=True),
        ),
    )
    network = SteppingNetwork(spec, num_subnets=4, rng=np.random.default_rng(0))
    set_prefix_assignments(network, [0.3, 0.55, 0.8, 1.0])
    network.assignment.validate()
    warm = np.random.default_rng(4).standard_normal((8, 3, 12, 12))
    network.train()
    network.forward(warm, subnet=3)
    network.eval()
    return network, np.random.default_rng(5).standard_normal((5, 3, 12, 12))


MODELS = {"conv": _conv_network, "mlp": _mlp_network, "avg_tanh": _avg_pool_tanh_network}


@pytest.fixture(params=sorted(MODELS))
def model(request):
    network, inputs = MODELS[request.param]()
    return network, inputs


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
@pytest.mark.parametrize("prune", [False, True])
class TestPlanEquivalence:
    @pytest.mark.parametrize("path", [(0, 1, 2, 3), (0, 2), (1, 3), (3,)])
    def test_compiled_matches_legacy_and_forward(self, model, dtype, prune, path):
        network, inputs = model
        if prune:
            apply_unstructured_pruning(network, 3e-2)
        tol = TOLERANCES[np.dtype(dtype)]
        compiled = IncrementalInference(network, apply_prune=prune, dtype=dtype)
        legacy = IncrementalInference(network, apply_prune=prune, dtype=dtype, compiled=False)
        got = compiled.run(inputs, subnet=path[0])
        want = legacy.run(inputs, subnet=path[0])
        np.testing.assert_allclose(got.logits, want.logits, **tol)
        for level in path[1:]:
            got = compiled.step_to(level)
            want = legacy.step_to(level)
            np.testing.assert_allclose(got.logits, want.logits, **tol)
        network.eval()
        with no_grad():
            direct = network.forward(inputs, subnet=path[-1], apply_prune=prune).data
        np.testing.assert_allclose(got.logits, direct, **tol)

    def test_mac_accounting_matches_network(self, model, dtype, prune):
        network, inputs = model
        if prune:
            apply_unstructured_pruning(network, 3e-2)
        compiled = IncrementalInference(network, apply_prune=prune, dtype=dtype)
        compiled.run(inputs, subnet=0)
        result = compiled.step_to(2)
        expected_to = network.subnet_macs(2, apply_prune=prune)
        expected_from = network.subnet_macs(0, apply_prune=prune)
        assert result.cumulative_macs == expected_to
        assert result.macs_executed == expected_to - expected_from
        assert result.macs_reused == expected_from


class TestPlanObject:
    def test_subnet_macs_precomputed(self):
        network, _ = _conv_network()
        plan = NetworkPlan(network, apply_prune=True, dtype=np.float32)
        assert plan.subnet_macs == tuple(
            network.subnet_macs(level) for level in range(network.num_subnets)
        )

    def test_for_network_shares_one_plan_per_platform(self):
        network, _ = _conv_network()
        a = NetworkPlan.for_network(network, dtype=np.float32)
        b = NetworkPlan.for_network(network, dtype=np.float32)
        other_dtype = NetworkPlan.for_network(network, dtype=np.float64)
        other_prune = NetworkPlan.for_network(network, dtype=np.float32, apply_prune=False)
        assert a is b
        assert other_dtype is not a and other_prune is not a

    def test_for_network_refresh_recompiles(self):
        network, _ = _conv_network()
        stale = NetworkPlan.for_network(network, dtype=np.float32)
        fresh = NetworkPlan.for_network(network, dtype=np.float32, refresh=True)
        assert fresh is not stale
        assert NetworkPlan.for_network(network, dtype=np.float32) is fresh

    def test_backends_share_the_platform_plan(self):
        network, _ = _conv_network()
        stepping = SteppingBackend(network)
        recompute = RecomputeBackend(network)
        assert stepping.plan is recompute.plan
        assert stepping._engine.plan is stepping.plan

    def test_plan_dtype_mismatch_rejected(self):
        network, _ = _conv_network()
        plan = NetworkPlan(network, dtype=np.float32)
        with pytest.raises(ValueError):
            IncrementalInference(network, dtype=np.float64, plan=plan)

    def test_plan_network_mismatch_rejected(self):
        network_a, _ = _conv_network()
        network_b, _ = _conv_network()
        plan = NetworkPlan(network_a, dtype=np.float64)
        with pytest.raises(ValueError, match="different network"):
            IncrementalInference(network_b, dtype=np.float64, plan=plan)

    def test_refresh_plan_picks_up_mutations(self):
        network, inputs = _conv_network()
        engine = IncrementalInference(network, dtype=np.float64)
        before = engine.run(inputs, subnet=3).logits.copy()
        network.param_layers[0].prune_mask[:, :, 0, 0] = 0.0
        engine.refresh_plan()
        after = engine.run(inputs, subnet=3).logits
        legacy = IncrementalInference(network, dtype=np.float64, compiled=False)
        want = legacy.run(inputs, subnet=3).logits
        np.testing.assert_allclose(after, want, rtol=1e-9, atol=1e-10)
        assert not np.allclose(after, before)


class TestPlanStructuralLimits:
    """Networks a plan cannot represent must fail loudly or fall back."""

    def _non_incremental_network(self):
        spec = mlp(num_classes=4, input_dim=16, hidden=(12, 8))
        network = SteppingNetwork(
            spec, num_subnets=3, enforce_incremental=False, rng=np.random.default_rng(0)
        )
        set_prefix_assignments(network, [0.4, 0.7, 1.0])
        return network, np.random.default_rng(6).standard_normal((5, 16))

    def test_compile_rejects_non_incremental_layers(self):
        network, _ = self._non_incremental_network()
        with pytest.raises(ValueError, match="enforce_incremental"):
            NetworkPlan(network)
        assert not NetworkPlan.supports(network)

    def test_engine_falls_back_to_legacy_path(self):
        network, inputs = self._non_incremental_network()
        engine = IncrementalInference(network)  # compiled requested by default
        assert not engine.compiled
        result = engine.run(inputs, subnet=2)
        network.eval()
        with no_grad():
            direct = network.forward(inputs, subnet=2).data
        np.testing.assert_allclose(result.logits, direct, rtol=1e-9, atol=1e-10)

    def test_backend_falls_back_to_legacy_path(self):
        network, inputs = self._non_incremental_network()
        backend = SteppingBackend(network)
        assert backend.plan is None
        outcome = backend.open(inputs).advance()
        assert outcome.subnet == 0

    def test_pool_before_any_parametric_layer_falls_back(self):
        from repro.models.spec import (
            ArchitectureSpec,
            ConvSpec,
            FlattenSpec,
            LinearSpec,
            PoolSpec,
        )

        spec = ArchitectureSpec(
            "pool-first",
            (3, 12, 12),
            4,
            (
                PoolSpec("max", 2),
                ConvSpec(8, kernel_size=3, padding=1),
                FlattenSpec(),
                LinearSpec(4, activation="none", is_output=True),
            ),
        )
        network = SteppingNetwork(spec, num_subnets=3, rng=np.random.default_rng(0))
        set_prefix_assignments(network, [0.4, 0.7, 1.0])
        assert not NetworkPlan.supports(network)
        engine = IncrementalInference(network)
        assert not engine.compiled
        inputs = np.random.default_rng(7).standard_normal((3, 3, 12, 12))
        result = engine.run(inputs, subnet=2)
        network.eval()
        with no_grad():
            direct = network.forward(inputs, subnet=2).data
        np.testing.assert_allclose(result.logits, direct, rtol=1e-9, atol=1e-10)

    def test_for_network_cache_does_not_leak(self):
        import gc
        import weakref

        network, _ = _mlp_network()
        NetworkPlan.for_network(network)
        ref = weakref.ref(network)
        del network
        gc.collect()
        assert ref() is None


class TestCompiledStateInterop:
    """The compiled path writes the same cache layout as the legacy path,
    so suspended state moves freely between the two."""

    def test_state_migrates_between_compiled_and_legacy(self):
        network, inputs = _conv_network()
        compiled = IncrementalInference(network, dtype=np.float64)
        legacy = IncrementalInference(network, dtype=np.float64, compiled=False)
        compiled.run(inputs, subnet=0)
        state = compiled.export_state()
        legacy.import_state(state)
        stepped = legacy.step_to(3)
        network.eval()
        with no_grad():
            direct = network.forward(inputs, subnet=3).data
        np.testing.assert_allclose(stepped.logits, direct, rtol=1e-9, atol=1e-10)

    def test_state_migrates_legacy_to_compiled_and_back(self):
        """Legacy steps in the middle must not leave the compiled path's
        incremental buffers stale (they are dropped and repacked)."""
        network, inputs = _conv_network()
        compiled = IncrementalInference(network, dtype=np.float64)
        legacy = IncrementalInference(network, dtype=np.float64, compiled=False)
        compiled.run(inputs, subnet=0)
        legacy.import_state(compiled.export_state())
        legacy.step_to(1)  # advances the cache without touching aux buffers
        compiled.import_state(legacy.export_state())
        stepped = compiled.step_to(3)
        network.eval()
        with no_grad():
            direct = network.forward(inputs, subnet=3).data
        np.testing.assert_allclose(stepped.logits, direct, rtol=1e-9, atol=1e-10)

    def test_interleaved_compiled_contexts_stay_isolated(self):
        network, inputs = _conv_network()
        batch_a, batch_b = inputs[:2], inputs[2:4]
        engine = IncrementalInference(network, dtype=np.float64)
        engine.run(batch_a, subnet=0)
        state_a = engine.export_state()
        engine.run(batch_b, subnet=1)
        state_b = engine.export_state()
        engine.import_state(state_a)
        stepped_a = engine.step_to(3)
        engine.export_state()
        engine.import_state(state_b)
        stepped_b = engine.step_to(2)
        network.eval()
        with no_grad():
            direct_a = network.forward(batch_a, subnet=3).data
            direct_b = network.forward(batch_b, subnet=2).data
        np.testing.assert_allclose(stepped_a.logits, direct_a, rtol=1e-9, atol=1e-10)
        np.testing.assert_allclose(stepped_b.logits, direct_b, rtol=1e-9, atol=1e-10)


class TestPlanInvalidationHooks:
    """Structural mutations must drop cached plans (train-then-serve safety).

    The network subscribes ``invalidate_plans`` to every layer assignment,
    so construction moves, assignment overwrites, pruning and revival all
    force the next ``for_network`` to recompile instead of serving a
    stale snapshot.
    """

    def _cached(self, network):
        return NetworkPlan.for_network(network, dtype=np.float32)

    def test_move_units_forces_recompile(self):
        network, _ = _conv_network()
        stale = self._cached(network)
        layer = network.param_layers[0]
        movable = layer.assignment.units_in_exactly(0)
        layer.assignment.move_units(movable[:1], 1)
        fresh = self._cached(network)
        assert fresh is not stale
        assert fresh.subnet_macs == tuple(
            network.subnet_macs(level) for level in range(network.num_subnets)
        )

    def test_set_assignment_forces_recompile(self):
        network, _ = _mlp_network()
        stale = self._cached(network)
        set_prefix_assignments(network, [0.4, 0.6, 0.8, 1.0])
        assert self._cached(network) is not stale

    def test_pruning_forces_recompile(self):
        network, _ = _conv_network()
        stale = self._cached(network)
        apply_unstructured_pruning(network, 5e-2)
        assert self._cached(network) is not stale

    def test_revival_forces_recompile(self):
        from repro.core.pruning import revive_incoming_synapses

        network, _ = _conv_network()
        apply_unstructured_pruning(network, 5e-2)
        stale = self._cached(network)
        revived = revive_incoming_synapses(network, 0, [0, 1])
        assert revived > 0
        assert self._cached(network) is not stale

    def test_unchanged_network_keeps_its_plan(self):
        network, _ = _conv_network()
        assert self._cached(network) is self._cached(network)

    def test_mutated_plan_serves_correct_logits(self):
        """End to end: compile, mutate, recompile via the cache, compare
        against the legacy oracle."""
        network, inputs = _conv_network()
        self._cached(network)  # populate the cache pre-mutation
        layer = network.param_layers[1]
        movable = layer.assignment.units_in_exactly(0)
        if movable.size > 1:
            layer.assignment.move_units(movable[:1], 2)
        apply_unstructured_pruning(network, 4e-2)
        compiled = IncrementalInference(network, dtype=np.float64)
        legacy = IncrementalInference(network, dtype=np.float64, compiled=False)
        got = compiled.run(inputs, subnet=2).logits
        want = legacy.run(inputs, subnet=2).logits
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-10)

    def test_retraining_invalidates_plans(self, image_loader):
        """Weight updates (distillation retraining) also stale the plan."""
        from repro.core import SteppingConfig, TrainingConfig, retrain_with_distillation

        network, _ = _conv_network()
        stale = self._cached(network)
        config = SteppingConfig(
            retrain_epochs=1,
            use_distillation=False,
            training=TrainingConfig(learning_rate=0.01, batch_size=16),
        )
        retrain_with_distillation(network, None, image_loader, config)
        assert self._cached(network) is not stale
