"""End-to-end tests of the high-level SteppingNet design flow."""

import numpy as np
import pytest

from repro.analysis.metrics import monotonic_violations
from repro.core.api import build_stepping_network, build_steppingnet
from repro.core.config import SteppingConfig


class TestBuildSteppingNetwork:
    def test_expansion_applied(self, tiny_spec, stepping_config):
        network = build_stepping_network(tiny_spec, stepping_config)
        expanded_units = network.spec.hidden_unit_counts()
        original_units = tiny_spec.hidden_unit_counts()
        assert expanded_units[0] > original_units[0]
        assert network.num_subnets == stepping_config.num_subnets

    def test_seed_reproducibility(self, tiny_spec, stepping_config):
        a = build_stepping_network(tiny_spec, stepping_config)
        b = build_stepping_network(tiny_spec, stepping_config)
        np.testing.assert_allclose(
            a.param_layers[0].weight.data, b.param_layers[0].weight.data
        )


class TestFullFlow:
    def test_smoke_flow_produces_consistent_result(self, trained_smoke_result):
        result, test_loader = trained_smoke_result
        config = result.config
        # One accuracy and one MAC fraction per subnet.
        assert len(result.subnet_accuracies) == config.num_subnets
        assert len(result.mac_fractions) == config.num_subnets
        # MAC budgets hold (small tolerance for integer rounding).
        for fraction, budget in zip(result.mac_fractions, config.mac_budgets):
            assert fraction <= budget + 0.02
        # Accuracies are valid probabilities-of-correctness.
        assert all(0.0 <= a <= 1.0 for a in result.subnet_accuracies)
        assert 0.0 <= result.teacher_accuracy <= 1.0

    def test_smoke_flow_accuracy_is_mostly_monotone(self, trained_smoke_result):
        result, _ = trained_smoke_result
        # Incremental accuracy enhancement: allow at most one small dip at
        # smoke scale, where training is only a handful of batches.
        assert monotonic_violations(result.subnet_accuracies, tolerance=0.05) <= 1

    def test_smoke_flow_beats_chance(self, trained_smoke_result):
        result, _ = trained_smoke_result
        chance = 1.0 / result.spec.num_classes
        assert result.subnet_accuracies[-1] > chance

    def test_table_row_contains_all_columns(self, trained_smoke_result):
        result, _ = trained_smoke_result
        row = result.table_row()
        assert row["network"] == result.spec.name
        for index in range(1, result.config.num_subnets + 1):
            assert f"A{index}" in row
            assert f"M{index}/Mt" in row

    def test_construction_result_attached(self, trained_smoke_result):
        result, _ = trained_smoke_result
        assert result.construction.num_iterations >= 1
        assert result.construction.mac_targets

    def test_incremental_property_preserved_after_full_flow(self, trained_smoke_result):
        """After training, stepping up still reproduces the direct forward pass."""
        from repro.core.incremental import IncrementalInference
        from repro.nn.tensor import no_grad

        result, test_loader = trained_smoke_result
        network = result.network
        inputs, _ = next(iter(test_loader))
        engine = IncrementalInference(network)
        engine.run(inputs, subnet=0)
        stepped = engine.step_to(network.num_subnets - 1)
        network.eval()
        with no_grad():
            direct = network.forward(inputs, subnet=network.num_subnets - 1).data
        np.testing.assert_allclose(stepped.logits, direct, atol=1e-8)

    def test_reusing_pretrained_teacher_skips_training(self, trained_smoke_result, tiny_spec):
        """Passing an existing teacher must not retrain it (weights unchanged)."""
        result, test_loader = trained_smoke_result
        teacher = result.teacher
        weights_before = [p.data.copy() for p in teacher.parameters()]
        config = result.config.with_overrides(num_iterations=1, retrain_epochs=1)
        build_steppingnet(result.spec, test_loader, test_loader, config, teacher=teacher)
        for before, param in zip(weights_before, teacher.parameters()):
            np.testing.assert_allclose(before, param.data)
