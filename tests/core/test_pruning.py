"""Tests for revivable unstructured pruning."""

import numpy as np
import pytest

from repro.core.network import SteppingNetwork
from repro.core.pruning import (
    apply_unstructured_pruning,
    pruning_summary,
    revive_incoming_synapses,
    revive_units,
)


@pytest.fixture
def network(tiny_spec, rng):
    return SteppingNetwork(tiny_spec, num_subnets=3, rng=rng)


class TestApplyPruning:
    def test_threshold_zero_prunes_nothing(self, network):
        report = apply_unstructured_pruning(network, threshold=0.0)
        assert report.total_pruned == 0
        assert report.pruned_fraction == 0.0

    def test_huge_threshold_prunes_everything(self, network):
        report = apply_unstructured_pruning(network, threshold=1e9)
        assert report.total_pruned == report.total_weights

    def test_small_weights_are_pruned(self, network):
        layer = network.param_layers[0]
        layer.weight.data[0, 0, 0, 0] = 1e-9
        report = apply_unstructured_pruning(network, threshold=1e-5)
        assert layer.prune_mask[0, 0, 0, 0] == 0.0
        assert report.per_layer_pruned[layer.layer_name] >= 1

    def test_pruning_is_revivable_on_recompute(self, network):
        layer = network.param_layers[0]
        layer.weight.data[0, 0, 0, 0] = 1e-9
        apply_unstructured_pruning(network, threshold=1e-5)
        assert layer.prune_mask[0, 0, 0, 0] == 0.0
        layer.weight.data[0, 0, 0, 0] = 1.0
        apply_unstructured_pruning(network, threshold=1e-5)
        assert layer.prune_mask[0, 0, 0, 0] == 1.0

    def test_negative_threshold_rejected(self, network):
        with pytest.raises(ValueError):
            apply_unstructured_pruning(network, threshold=-1.0)

    def test_pruning_reduces_mac_count(self, network):
        before = network.subnet_macs(0)
        layer = network.param_layers[0]
        layer.weight.data[0] = 0.0
        apply_unstructured_pruning(network, threshold=1e-5)
        assert network.subnet_macs(0) < before

    def test_report_totals_consistent(self, network):
        report = apply_unstructured_pruning(network, threshold=1e-5)
        assert report.total_weights == sum(
            layer.weight.data.size for layer in network.param_layers
        )


class TestRevive:
    def test_revive_units_restores_mask_rows(self, network):
        layer = network.param_layers[0]
        layer.prune_mask[1] = 0.0
        revived = revive_units(layer, [1])
        assert revived == layer.prune_mask[1].size
        np.testing.assert_allclose(layer.prune_mask[1], 1.0)

    def test_revive_empty_list(self, network):
        assert revive_units(network.param_layers[0], []) == 0

    def test_revive_rejects_non_stepping_layer(self):
        with pytest.raises(TypeError):
            revive_units(object(), [0])

    def test_revive_incoming_synapses_by_param_index(self, network):
        layer = network.param_layers[1]
        layer.prune_mask[0] = 0.0
        revive_incoming_synapses(network, 1, [0])
        np.testing.assert_allclose(layer.prune_mask[0], 1.0)


class TestSummary:
    def test_summary_fraction_range(self, network):
        network.param_layers[0].prune_mask[0] = 0.0
        summary = pruning_summary(network)
        for fraction in summary.values():
            assert 0.0 <= fraction <= 1.0
        assert summary[network.param_layers[0].layer_name] > 0.0
