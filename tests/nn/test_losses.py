"""Tests for the loss modules, in particular the distillation blend of Eq. (4)."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.losses import CrossEntropyLoss, DistillationLoss, KLDivergenceLoss, MSELoss
from repro.nn.tensor import Tensor


class TestCrossEntropyLoss:
    def test_matches_functional(self):
        logits = Tensor(np.random.default_rng(0).standard_normal((6, 4)))
        labels = np.array([0, 1, 2, 3, 0, 1])
        assert CrossEntropyLoss()(logits, labels).item() == pytest.approx(
            F.cross_entropy(logits, labels).item()
        )

    def test_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([[20.0, -20.0], [-20.0, 20.0]]))
        loss = CrossEntropyLoss()(logits, np.array([0, 1]))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss(label_smoothing=1.0)


class TestKLDivergenceLoss:
    def test_zero_when_student_matches_teacher(self):
        logits = np.array([[0.2, 1.3, -0.5]])
        teacher = np.exp(logits) / np.exp(logits).sum(axis=1, keepdims=True)
        assert KLDivergenceLoss()(teacher, Tensor(logits)).item() == pytest.approx(0.0, abs=1e-10)

    def test_gradient_pulls_student_towards_teacher(self):
        teacher = np.array([[1.0, 0.0]])
        student = Tensor(np.array([[0.0, 0.0]]), requires_grad=True)
        KLDivergenceLoss()(teacher, student).backward()
        # Increasing the first logit decreases the loss.
        assert student.grad[0, 0] < 0
        assert student.grad[0, 1] > 0


class TestDistillationLoss:
    def test_gamma_one_equals_cross_entropy(self):
        logits = Tensor(np.random.default_rng(1).standard_normal((4, 3)))
        labels = np.array([0, 1, 2, 0])
        teacher = np.random.default_rng(2).standard_normal((4, 3))
        blended = DistillationLoss(gamma=1.0)(logits, labels, teacher)
        assert blended.item() == pytest.approx(F.cross_entropy(logits, labels).item())

    def test_no_teacher_falls_back_to_cross_entropy(self):
        logits = Tensor(np.random.default_rng(1).standard_normal((4, 3)))
        labels = np.array([0, 1, 2, 0])
        loss = DistillationLoss(gamma=0.4)(logits, labels, None)
        assert loss.item() == pytest.approx(F.cross_entropy(logits, labels).item())

    def test_blend_is_between_components(self):
        rng = np.random.default_rng(3)
        logits = Tensor(rng.standard_normal((8, 5)))
        labels = rng.integers(0, 5, size=8)
        teacher_logits = rng.standard_normal((8, 5))
        gamma = 0.4
        blended = DistillationLoss(gamma=gamma)(logits, labels, teacher_logits).item()
        ce = F.cross_entropy(logits, labels).item()
        teacher_probs = np.exp(teacher_logits) / np.exp(teacher_logits).sum(axis=1, keepdims=True)
        kl = F.kl_divergence(teacher_probs, logits).item()
        assert blended == pytest.approx(gamma * ce + (1 - gamma) * kl, rel=1e-9)

    def test_paper_default_gamma(self):
        assert DistillationLoss().gamma == pytest.approx(0.4)

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            DistillationLoss(gamma=1.5)

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            DistillationLoss(temperature=0.0)

    def test_temperature_softens_teacher(self):
        logits = Tensor(np.zeros((2, 3)), requires_grad=True)
        labels = np.array([0, 1])
        teacher = np.array([[5.0, 0.0, 0.0], [0.0, 5.0, 0.0]])
        sharp = DistillationLoss(gamma=0.0, temperature=1.0)(logits, labels, teacher).item()
        soft = DistillationLoss(gamma=0.0, temperature=10.0)(logits, labels, teacher).item()
        # A softer teacher is closer to the uniform student, so the KL shrinks.
        assert soft < sharp


class TestMSELoss:
    def test_zero_for_identical(self):
        pred = Tensor(np.ones((3, 2)))
        assert MSELoss()(pred, np.ones((3, 2))).item() == pytest.approx(0.0)

    def test_value(self):
        pred = Tensor(np.zeros((2, 2)))
        assert MSELoss()(pred, np.ones((2, 2))).item() == pytest.approx(1.0)

    def test_gradient(self):
        pred = Tensor(np.zeros((1, 2)), requires_grad=True)
        MSELoss()(pred, np.array([[2.0, 2.0]])).backward()
        np.testing.assert_allclose(pred.grad, [[-2.0, -2.0]])
