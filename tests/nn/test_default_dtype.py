"""Tests for the configurable default tensor dtype."""

import numpy as np
import pytest

from repro.nn.tensor import (
    Tensor,
    default_dtype,
    get_default_dtype,
    set_default_dtype,
)


@pytest.fixture(autouse=True)
def _restore_default():
    previous = get_default_dtype()
    yield
    set_default_dtype(previous)


class TestDefaultDtype:
    def test_initial_default_is_float64(self):
        assert get_default_dtype() == np.dtype(np.float64)
        assert Tensor([1.0, 2.0]).data.dtype == np.float64

    def test_set_default_dtype(self):
        previous = set_default_dtype(np.float32)
        assert previous == np.dtype(np.float64)
        assert Tensor([1.0, 2.0]).data.dtype == np.float32

    def test_non_float_rejected(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int32)

    def test_context_manager_scopes_and_restores(self):
        with default_dtype(np.float32):
            assert Tensor([1.0]).data.dtype == np.float32
        assert Tensor([1.0]).data.dtype == np.float64

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with default_dtype(np.float32):
                raise RuntimeError("boom")
        assert get_default_dtype() == np.dtype(np.float64)

    def test_float32_arrays_preserved_under_float32_default(self):
        with default_dtype(np.float32):
            payload = np.ones(4, dtype=np.float32)
            tensor = Tensor(payload)
            assert tensor.data.dtype == np.float32
            # No copy is forced when the dtype already matches.
            assert tensor.data is payload

    def test_arithmetic_stays_in_float32(self):
        with default_dtype(np.float32):
            a = Tensor(np.ones((2, 2), dtype=np.float32))
            b = Tensor(np.ones((2, 2), dtype=np.float32))
            assert (a @ b).data.dtype == np.float32
            assert (a + b).data.dtype == np.float32

    def test_env_var_documented_name(self):
        """The env-var spelling is part of the public contract."""
        import repro.nn.tensor as tensor_module

        assert "REPRO_DEFAULT_DTYPE" in open(tensor_module.__file__).read()

    def test_env_var_selects_dtype(self):
        result = self._import_with_env("float32", "print(repro.nn.tensor.get_default_dtype())")
        assert result.returncode == 0
        assert "float32" in result.stdout

    def test_env_var_must_be_floating(self):
        """REPRO_DEFAULT_DTYPE goes through the same floating-kind
        validation as set_default_dtype (regression: int32 used to be
        silently accepted and truncate tensor payloads)."""
        result = self._import_with_env("int32", "")
        assert result.returncode != 0
        assert "floating" in result.stderr

    @staticmethod
    def _import_with_env(dtype_value, extra):
        import os
        import subprocess
        import sys

        env = dict(os.environ, REPRO_DEFAULT_DTYPE=dtype_value)
        return subprocess.run(
            [sys.executable, "-c", f"import repro.nn.tensor\n{extra}"],
            capture_output=True,
            text=True,
            env=env,
        )
