"""Tests for functional primitives: convolution, pooling, normalisation, losses."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor


def naive_conv2d(images, weight, bias, stride, padding):
    """Straightforward loop implementation used as a reference."""
    n, c_in, h, w = images.shape
    c_out, _, kh, kw = weight.shape
    if padding:
        images = np.pad(images, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (images.shape[2] - kh) // stride + 1
    out_w = (images.shape[3] - kw) // stride + 1
    out = np.zeros((n, c_out, out_h, out_w))
    for b in range(n):
        for o in range(c_out):
            for i in range(out_h):
                for j in range(out_w):
                    patch = images[b, :, i * stride:i * stride + kh, j * stride:j * stride + kw]
                    out[b, o, i, j] = (patch * weight[o]).sum()
            if bias is not None:
                out[b, o] += bias[o]
    return out


class TestIm2Col:
    def test_shapes(self):
        images = np.random.default_rng(0).standard_normal((2, 3, 8, 8))
        cols, (oh, ow) = F.im2col(images, (3, 3), (1, 1), (1, 1))
        assert (oh, ow) == (8, 8)
        assert cols.shape == (2, 8, 8, 27)

    def test_col2im_adjointness(self):
        """col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>."""
        rng = np.random.default_rng(1)
        x = rng.standard_normal((2, 3, 6, 6))
        cols, (oh, ow) = F.im2col(x, (3, 3), (1, 1), (1, 1))
        y = rng.standard_normal(cols.shape)
        lhs = (cols * y).sum()
        rhs = (x * F.col2im(y, x.shape, (3, 3), (1, 1), (1, 1))).sum()
        assert lhs == pytest.approx(rhs)

    def test_stride_two_shapes(self):
        images = np.zeros((1, 1, 8, 8))
        _, (oh, ow) = F.im2col(images, (2, 2), (2, 2), (0, 0))
        assert (oh, ow) == (4, 4)


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_naive_reference(self, stride, padding):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3, 7, 7))
        w = rng.standard_normal((4, 3, 3, 3))
        b = rng.standard_normal(4)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        expected = naive_conv2d(x, w, b, stride, padding)
        np.testing.assert_allclose(out.data, expected, atol=1e-10)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError, match="channel mismatch"):
            F.conv2d(Tensor(np.zeros((1, 2, 5, 5))), Tensor(np.zeros((3, 4, 3, 3))))

    def test_no_bias(self):
        x = Tensor(np.ones((1, 1, 4, 4)))
        w = Tensor(np.ones((1, 1, 2, 2)))
        out = F.conv2d(x, w, bias=None, stride=2, padding=0)
        np.testing.assert_allclose(out.data, np.full((1, 1, 2, 2), 4.0))

    def test_gradients_match_numerical(self, gradcheck):
        rng = np.random.default_rng(2)
        x = Tensor(rng.standard_normal((2, 2, 5, 5)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 2, 3, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal(3), requires_grad=True)

        def build():
            return F.conv2d(x, w, b, stride=1, padding=1).sum()

        gradcheck(build, [x, w, b], rtol=1e-3, atol=1e-5)


class TestPooling:
    def test_max_pool_forward(self):
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2)
        np.testing.assert_allclose(out.data.reshape(2, 2), [[5, 7], [13, 15]])

    def test_max_pool_backward_routes_to_max(self):
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(x.grad.reshape(4, 4), expected)

    def test_avg_pool_forward(self):
        x = Tensor(np.ones((1, 2, 4, 4)))
        out = F.avg_pool2d(x, 2)
        np.testing.assert_allclose(out.data, np.ones((1, 2, 2, 2)))

    def test_avg_pool_backward_spreads_gradient(self):
        x = Tensor(np.zeros((1, 1, 4, 4)), requires_grad=True)
        F.avg_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 4, 4), 0.25))

    def test_global_avg_pool_shape(self):
        x = Tensor(np.ones((2, 3, 4, 4)))
        assert F.global_avg_pool2d(x).shape == (2, 3)

    def test_max_pool_gradcheck(self, gradcheck):
        rng = np.random.default_rng(3)
        x = Tensor(rng.standard_normal((1, 2, 6, 6)), requires_grad=True)

        def build():
            return (F.max_pool2d(x, 2) * 2.0).sum()

        gradcheck(build, [x], rtol=1e-3, atol=1e-5)


class TestInferenceFastPath:
    """Grad-free numpy entry points must match their autograd twins."""

    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_conv2d_infer_matches_conv2d(self, stride, padding):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3, 8, 8))
        weight = rng.standard_normal((4, 3, 3, 3))
        bias = rng.standard_normal(4)
        got = F.conv2d_infer(x, weight, bias, stride=stride, padding=padding)
        want = F.conv2d(Tensor(x), Tensor(weight), Tensor(bias), stride=stride, padding=padding)
        np.testing.assert_allclose(got, want.data, atol=1e-12)

    def test_pool_infer_matches_pool(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((2, 3, 8, 8))
        np.testing.assert_allclose(
            F.max_pool2d_infer(x, 2), F.max_pool2d(Tensor(x), 2).data, atol=1e-12
        )
        np.testing.assert_allclose(
            F.avg_pool2d_infer(x, 2), F.avg_pool2d(Tensor(x), 2).data, atol=1e-12
        )

    def test_im2col_channel_major_is_a_transposed_im2col(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((2, 3, 6, 6))
        cols, (out_h, out_w) = F.im2col(x, (3, 3), (1, 1), (1, 1))
        major = F.im2col_channel_major(x, (3, 3), (1, 1), (1, 1))
        assert major.shape == (3, 3, 3, 2, out_h, out_w)
        # (N, oh, ow, C*kh*kw) -> (C, kh, kw, N, oh, ow)
        want = cols.reshape(2, out_h, out_w, 3, 3, 3).transpose(3, 4, 5, 0, 1, 2)
        np.testing.assert_array_equal(np.asarray(major), want)


class TestBatchNorm:
    def test_training_normalises_batch(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((32, 4)) * 3.0 + 5.0)
        gamma = Tensor(np.ones(4), requires_grad=True)
        beta = Tensor(np.zeros(4), requires_grad=True)
        running_mean = np.zeros(4)
        running_var = np.ones(4)
        out = F.batch_norm(x, gamma, beta, running_mean, running_var, training=True)
        np.testing.assert_allclose(out.data.mean(axis=0), np.zeros(4), atol=1e-8)
        np.testing.assert_allclose(out.data.std(axis=0), np.ones(4), atol=1e-3)

    def test_running_stats_updated_in_training_only(self):
        x = Tensor(np.random.default_rng(0).standard_normal((16, 3)) + 2.0)
        gamma, beta = Tensor(np.ones(3)), Tensor(np.zeros(3))
        running_mean, running_var = np.zeros(3), np.ones(3)
        F.batch_norm(x, gamma, beta, running_mean, running_var, training=True, momentum=0.5)
        assert np.all(running_mean != 0.0)
        saved = running_mean.copy()
        F.batch_norm(x, gamma, beta, running_mean, running_var, training=False)
        np.testing.assert_allclose(running_mean, saved)

    def test_eval_uses_running_stats(self):
        x = Tensor(np.full((4, 2), 10.0))
        gamma, beta = Tensor(np.ones(2)), Tensor(np.zeros(2))
        running_mean, running_var = np.full(2, 10.0), np.ones(2)
        out = F.batch_norm(x, gamma, beta, running_mean, running_var, training=False)
        np.testing.assert_allclose(out.data, np.zeros((4, 2)), atol=1e-6)

    def test_4d_input(self):
        x = Tensor(np.random.default_rng(0).standard_normal((4, 3, 5, 5)))
        gamma, beta = Tensor(np.ones(3)), Tensor(np.zeros(3))
        out = F.batch_norm(x, gamma, beta, np.zeros(3), np.ones(3), training=True)
        assert out.shape == x.shape
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), np.zeros(3), atol=1e-8)

    def test_rejects_3d_input(self):
        with pytest.raises(ValueError):
            F.batch_norm(
                Tensor(np.zeros((2, 3, 4))), Tensor(np.ones(3)), Tensor(np.zeros(3)),
                np.zeros(3), np.ones(3), training=True,
            )

    def test_training_gradcheck(self, gradcheck):
        rng = np.random.default_rng(4)
        x = Tensor(rng.standard_normal((8, 3)), requires_grad=True)
        gamma = Tensor(rng.standard_normal(3), requires_grad=True)
        beta = Tensor(rng.standard_normal(3), requires_grad=True)

        def build():
            return (
                F.batch_norm(x, gamma, beta, np.zeros(3), np.ones(3), training=True) ** 2
            ).sum()

        gradcheck(build, [x, gamma, beta], rtol=1e-3, atol=1e-5)


class TestDropoutAndActivations:
    def test_dropout_identity_in_eval(self):
        x = Tensor(np.ones((4, 4)))
        out = F.dropout(x, 0.5, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_zero_probability_is_identity(self):
        x = Tensor(np.ones((3, 3)))
        assert F.dropout(x, 0.0, training=True) is x

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).standard_normal((5, 7)))
        probs = F.softmax(x)
        np.testing.assert_allclose(probs.data.sum(axis=-1), np.ones(5), atol=1e-12)

    def test_softmax_is_shift_invariant(self):
        x = np.random.default_rng(0).standard_normal((3, 4))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(1).standard_normal((4, 6)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-10
        )


class TestLossesFunctional:
    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_cross_entropy_matches_manual(self):
        logits = np.array([[2.0, 1.0, 0.1], [0.5, 2.5, 0.0]])
        labels = np.array([0, 1])
        loss = F.cross_entropy(Tensor(logits), labels)
        log_probs = logits - np.log(np.exp(logits).sum(axis=1, keepdims=True))
        expected = -np.mean([log_probs[0, 0], log_probs[1, 1]])
        assert loss.item() == pytest.approx(expected)

    def test_cross_entropy_label_smoothing_increases_loss_on_confident_model(self):
        logits = Tensor(np.array([[10.0, -10.0]]))
        labels = np.array([0])
        plain = F.cross_entropy(logits, labels).item()
        smoothed = F.cross_entropy(logits, labels, label_smoothing=0.2).item()
        assert smoothed > plain

    def test_cross_entropy_gradcheck(self, gradcheck):
        rng = np.random.default_rng(5)
        logits = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        labels = np.array([0, 1, 2, 3])

        def build():
            return F.cross_entropy(logits, labels)

        gradcheck(build, [logits], rtol=1e-3, atol=1e-6)

    def test_kl_divergence_zero_for_identical_distributions(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        teacher = np.exp(logits) / np.exp(logits).sum(axis=1, keepdims=True)
        kl = F.kl_divergence(teacher, Tensor(logits))
        assert kl.item() == pytest.approx(0.0, abs=1e-10)

    def test_kl_divergence_positive_for_different_distributions(self):
        teacher = np.array([[0.9, 0.05, 0.05]])
        student_logits = Tensor(np.array([[0.0, 0.0, 0.0]]))
        assert F.kl_divergence(teacher, student_logits).item() > 0.0

    def test_nll_loss(self):
        log_probs = Tensor(np.log(np.array([[0.5, 0.5], [0.9, 0.1]])))
        loss = F.nll_loss(log_probs, np.array([0, 0]))
        assert loss.item() == pytest.approx(-(np.log(0.5) + np.log(0.9)) / 2)

    def test_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert F.accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)
