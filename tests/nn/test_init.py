"""Tests for weight initialisers."""

import numpy as np
import pytest

from repro.nn import init


class TestFanComputation:
    def test_linear_shape(self):
        assert init._fan_in_out((8, 4)) == (4, 8)

    def test_conv_shape(self):
        fan_in, fan_out = init._fan_in_out((16, 3, 3, 3))
        assert fan_in == 3 * 9
        assert fan_out == 16 * 9


class TestDistributions:
    def test_kaiming_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_normal((2000, 100), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 100), rel=0.05)

    def test_kaiming_uniform_bounds(self):
        w = init.kaiming_uniform((64, 32), np.random.default_rng(0))
        bound = np.sqrt(6.0 / 32)
        assert np.abs(w).max() <= bound

    def test_xavier_normal_std(self):
        rng = np.random.default_rng(1)
        w = init.xavier_normal((1000, 1000), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 2000), rel=0.1)

    def test_xavier_uniform_bounds(self):
        w = init.xavier_uniform((50, 30), np.random.default_rng(0))
        assert np.abs(w).max() <= np.sqrt(6.0 / 80)

    def test_zeros_ones(self):
        assert init.zeros((3, 3)).sum() == 0
        assert init.ones((3, 3)).sum() == 9

    def test_uniform_bias_bounds(self):
        b = init.uniform_bias(16, (100,), np.random.default_rng(0))
        assert np.abs(b).max() <= 0.25

    def test_reproducibility_with_same_rng_seed(self):
        a = init.kaiming_normal((4, 4), np.random.default_rng(42))
        b = init.kaiming_normal((4, 4), np.random.default_rng(42))
        np.testing.assert_allclose(a, b)


class TestRegistry:
    def test_lookup(self):
        assert init.get_initializer("xavier_uniform") is init.xavier_uniform

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="available"):
            init.get_initializer("nope")
