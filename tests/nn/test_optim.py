"""Tests for optimizers and learning-rate schedulers."""

import numpy as np
import pytest

from repro import nn
from repro.nn.modules.module import Parameter
from repro.nn.optim import SGD, Adam, CosineAnnealingLR, ExponentialLR, StepLR


def make_param(value=1.0, shape=(3,)):
    return Parameter(np.full(shape, value))


class TestSGD:
    def test_plain_step(self):
        p = make_param(1.0)
        p.grad = np.full(3, 0.5)
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, np.full(3, 0.95))

    def test_skips_params_without_grad(self):
        p = make_param(1.0)
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, np.ones(3))

    def test_momentum_accumulates(self):
        p = make_param(0.0)
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.ones(3)
        opt.step()
        first = p.data.copy()
        p.grad = np.ones(3)
        opt.step()
        # Second step moves further because of the momentum buffer.
        assert np.all((first - p.data) > 1.0)

    def test_weight_decay_pulls_towards_zero(self):
        p = make_param(1.0)
        p.grad = np.zeros(3)
        SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.data, np.full(3, 0.95))

    def test_nesterov(self):
        p = make_param(0.0)
        opt = SGD([p], lr=0.1, momentum=0.9, nesterov=True)
        p.grad = np.ones(3)
        opt.step()
        assert p.data[0] < -0.1  # larger step than plain SGD

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([make_param()], lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([make_param()], lr=0.1, momentum=-0.5)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_zero_grad(self):
        p = make_param()
        p.grad = np.ones(3)
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_param_groups_with_different_lrs(self):
        p1, p2 = make_param(1.0), make_param(1.0)
        opt = SGD([{"params": [p1], "lr": 0.1}, {"params": [p2], "lr": 0.01}], lr=0.5)
        p1.grad = np.ones(3)
        p2.grad = np.ones(3)
        opt.step()
        np.testing.assert_allclose(p1.data, np.full(3, 0.9))
        np.testing.assert_allclose(p2.data, np.full(3, 0.99))

    def test_set_lr(self):
        opt = SGD([make_param()], lr=0.1)
        opt.set_lr(0.5)
        assert opt.lr == 0.5


class TestAdam:
    def test_first_step_magnitude_close_to_lr(self):
        p = make_param(0.0)
        p.grad = np.full(3, 10.0)
        Adam([p], lr=0.01).step()
        np.testing.assert_allclose(np.abs(p.data), np.full(3, 0.01), rtol=1e-3)

    def test_converges_on_quadratic(self):
        p = make_param(5.0, shape=(1,))
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            p.grad = 2 * p.data  # d/dx x^2
            opt.step()
        assert abs(p.data[0]) < 0.05

    def test_weight_decay(self):
        p = make_param(1.0)
        p.grad = np.zeros(3)
        Adam([p], lr=0.1, weight_decay=1.0).step()
        assert np.all(p.data < 1.0)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([make_param()], betas=(1.5, 0.9))


class TestSchedulers:
    def _opt(self, lr=1.0):
        return SGD([make_param()], lr=lr)

    def test_step_lr(self):
        opt = self._opt()
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_step_lr_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepLR(self._opt(), step_size=0)

    def test_cosine_reaches_eta_min(self):
        opt = self._opt()
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.05)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.05)

    def test_cosine_monotone_decrease(self):
        opt = self._opt()
        sched = CosineAnnealingLR(opt, t_max=5)
        previous = opt.lr
        for _ in range(5):
            sched.step()
            assert opt.lr <= previous + 1e-12
            previous = opt.lr

    def test_exponential(self):
        opt = self._opt()
        sched = ExponentialLR(opt, gamma=0.5)
        sched.step()
        assert opt.lr == pytest.approx(0.5)
        sched.step()
        assert opt.lr == pytest.approx(0.25)
