"""Property-based tests of the autograd engine (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import functional as F
from repro.nn.tensor import Tensor


def small_arrays(min_dims=1, max_dims=2, max_side=5):
    return hnp.arrays(
        dtype=np.float64,
        shape=hnp.array_shapes(min_dims=min_dims, max_dims=max_dims, min_side=1, max_side=max_side),
        elements=st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False),
    )


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_sum_gradient_is_all_ones(array):
    t = Tensor(array, requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(array))


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_identity_through_reshape_transpose(array):
    """Reshaping and transposing never change the gradient of a sum."""
    t = Tensor(array, requires_grad=True)
    out = t.reshape(-1).reshape(array.shape)
    if array.ndim == 2:
        out = out.T.T
    out.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(array))


@settings(max_examples=30, deadline=None)
@given(small_arrays(), st.floats(-2.0, 2.0, allow_nan=False))
def test_linearity_of_backward(array, scale):
    """grad of (c * x).sum() is c everywhere — backward is linear."""
    t = Tensor(array, requires_grad=True)
    (t * scale).sum().backward()
    np.testing.assert_allclose(t.grad, np.full_like(array, scale), atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_relu_output_nonnegative_and_gradient_bounded(array):
    t = Tensor(array, requires_grad=True)
    out = t.relu()
    assert (out.data >= 0).all()
    out.sum().backward()
    assert ((t.grad == 0) | (t.grad == 1)).all()


@settings(max_examples=30, deadline=None)
@given(small_arrays(min_dims=2, max_dims=2))
def test_softmax_rows_are_distributions(array):
    probs = F.softmax(Tensor(array)).data
    assert (probs >= 0).all()
    np.testing.assert_allclose(probs.sum(axis=-1), np.ones(array.shape[0]), atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(small_arrays(min_dims=2, max_dims=2))
def test_log_softmax_never_positive(array):
    log_probs = F.log_softmax(Tensor(array)).data
    assert (log_probs <= 1e-12).all()


@settings(max_examples=20, deadline=None)
@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 4), st.integers(2, 5)),
        elements=st.floats(-4.0, 4.0, allow_nan=False),
    )
)
def test_cross_entropy_is_nonnegative_and_bounded_by_log_classes_plus_margin(logits):
    labels = np.zeros(logits.shape[0], dtype=int)
    loss = F.cross_entropy(Tensor(logits), labels).item()
    assert loss >= -1e-9


@settings(max_examples=20, deadline=None)
@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 3), st.integers(2, 4)),
        elements=st.floats(-3.0, 3.0, allow_nan=False),
    )
)
def test_kl_divergence_nonnegative(student_logits):
    rng = np.random.default_rng(0)
    teacher = rng.random(student_logits.shape) + 0.1
    teacher /= teacher.sum(axis=1, keepdims=True)
    kl = F.kl_divergence(teacher, Tensor(student_logits)).item()
    assert kl >= -1e-9


@settings(max_examples=15, deadline=None)
@given(
    st.integers(1, 3),  # batch
    st.integers(1, 3),  # in channels
    st.integers(1, 3),  # out channels
    st.integers(4, 7),  # spatial
)
def test_conv_gradient_shapes_always_match_parameters(batch, c_in, c_out, size):
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((batch, c_in, size, size)), requires_grad=True)
    w = Tensor(rng.standard_normal((c_out, c_in, 3, 3)), requires_grad=True)
    b = Tensor(rng.standard_normal(c_out), requires_grad=True)
    F.conv2d(x, w, b, stride=1, padding=1).sum().backward()
    assert x.grad.shape == x.shape
    assert w.grad.shape == w.shape
    assert b.grad.shape == b.shape


@settings(max_examples=20, deadline=None)
@given(small_arrays(min_dims=2, max_dims=2, max_side=4), small_arrays(min_dims=2, max_dims=2, max_side=4))
def test_addition_gradient_shapes_match_operands(a, b):
    """Even under broadcasting, each operand's gradient matches its own shape."""
    try:
        np.broadcast_shapes(a.shape, b.shape)
    except ValueError:
        pytest.skip("shapes do not broadcast")
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    (ta + tb).sum().backward()
    assert ta.grad.shape == a.shape
    assert tb.grad.shape == b.shape
