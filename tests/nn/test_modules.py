"""Tests for the Module system and the layer library."""

import numpy as np
import pytest

from repro import nn
from repro.nn.modules.module import Module, Parameter
from repro.nn.tensor import Tensor


class TestModuleRegistration:
    def test_parameters_are_registered(self):
        layer = nn.Linear(4, 3)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_nested_modules_traversal(self):
        model = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        names = [name for name, _ in model.named_parameters()]
        assert "0.weight" in names and "2.bias" in names
        assert len(list(model.parameters())) == 4

    def test_named_modules_includes_children(self):
        model = nn.Sequential(nn.Linear(2, 2))
        names = [name for name, _ in model.named_modules()]
        assert "" in names and "0" in names

    def test_buffers_registered(self):
        bn = nn.BatchNorm1d(3)
        buffer_names = [name for name, _ in bn.named_buffers()]
        assert set(buffer_names) == {"running_mean", "running_var"}

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        model.eval()
        assert not model.training
        assert not model[1].training
        model.train()
        assert model[1].training

    def test_zero_grad_clears_all(self):
        model = nn.Linear(3, 2)
        out = model(Tensor(np.ones((1, 3))))
        out.sum().backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None

    def test_num_parameters(self):
        model = nn.Linear(4, 3)
        assert model.num_parameters() == 4 * 3 + 3

    def test_forward_not_implemented_on_base(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

    def test_repr_contains_children(self):
        model = nn.Sequential(nn.Linear(2, 2))
        assert "Linear" in repr(model)


class TestStateDict:
    def test_roundtrip(self):
        a = nn.Sequential(nn.Linear(4, 3), nn.BatchNorm1d(3))
        b = nn.Sequential(nn.Linear(4, 3), nn.BatchNorm1d(3))
        state = a.state_dict()
        b.load_state_dict(state)
        np.testing.assert_allclose(a[0].weight.data, b[0].weight.data)
        np.testing.assert_allclose(a[1].running_mean, b[1].running_mean)

    def test_shape_mismatch_raises(self):
        a = nn.Linear(4, 3)
        b = nn.Linear(4, 2)
        with pytest.raises(ValueError, match="shape mismatch"):
            b.load_state_dict(a.state_dict())

    def test_unexpected_key_strict(self):
        a = nn.Linear(4, 3)
        state = a.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(KeyError):
            a.load_state_dict(state)
        a.load_state_dict(state, strict=False)


class TestLinear:
    def test_forward_shape_and_math(self):
        layer = nn.Linear(3, 2, rng=np.random.default_rng(0))
        x = np.ones((4, 3))
        out = layer(Tensor(x))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(out.data, expected)

    def test_no_bias(self):
        layer = nn.Linear(3, 2, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            nn.Linear(0, 2)

    def test_reproducible_with_rng(self):
        a = nn.Linear(5, 5, rng=np.random.default_rng(7))
        b = nn.Linear(5, 5, rng=np.random.default_rng(7))
        np.testing.assert_allclose(a.weight.data, b.weight.data)


class TestConv2d:
    def test_forward_shape(self):
        layer = nn.Conv2d(3, 8, 3, padding=1)
        out = layer(Tensor(np.zeros((2, 3, 16, 16))))
        assert out.shape == (2, 8, 16, 16)

    def test_stride_halves_resolution(self):
        layer = nn.Conv2d(3, 4, 3, stride=2, padding=1)
        out = layer(Tensor(np.zeros((1, 3, 16, 16))))
        assert out.shape == (1, 4, 8, 8)

    def test_output_spatial_size_helper(self):
        layer = nn.Conv2d(3, 4, 5, stride=1, padding=0)
        assert layer.output_spatial_size(32, 32) == (28, 28)

    def test_invalid_kernel(self):
        with pytest.raises(ValueError):
            nn.Conv2d(3, 4, 0)


class TestNormalisationLayers:
    def test_batchnorm1d_shape_check(self):
        bn = nn.BatchNorm1d(4)
        with pytest.raises(ValueError):
            bn(Tensor(np.zeros((2, 3))))

    def test_batchnorm2d_shape_check(self):
        bn = nn.BatchNorm2d(4)
        with pytest.raises(ValueError):
            bn(Tensor(np.zeros((2, 3, 8, 8))))

    def test_batchnorm_normalises_training_batch(self):
        bn = nn.BatchNorm1d(3)
        x = Tensor(np.random.default_rng(0).standard_normal((64, 3)) * 4 + 7)
        out = bn(x)
        np.testing.assert_allclose(out.data.mean(axis=0), np.zeros(3), atol=1e-7)

    def test_reset_running_stats(self):
        bn = nn.BatchNorm1d(3)
        bn(Tensor(np.random.default_rng(0).standard_normal((8, 3)) + 5))
        bn.reset_running_stats()
        np.testing.assert_allclose(bn.running_mean, np.zeros(3))

    def test_eval_mode_is_deterministic_function(self):
        bn = nn.BatchNorm1d(3)
        bn(Tensor(np.random.default_rng(0).standard_normal((8, 3))))
        bn.eval()
        x = Tensor(np.ones((2, 3)))
        np.testing.assert_allclose(bn(x).data, bn(x).data)


class TestOtherLayers:
    def test_flatten(self):
        out = nn.Flatten()(Tensor(np.zeros((2, 3, 4, 5))))
        assert out.shape == (2, 60)

    def test_relu_layer(self):
        out = nn.ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_leaky_relu(self):
        out = nn.LeakyReLU(0.1)(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.data, [-0.1, 2.0])

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)

    def test_dropout_eval_identity(self):
        drop = nn.Dropout(0.9)
        drop.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_max_avg_pool_layers(self):
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4))
        assert nn.MaxPool2d(2)(x).shape == (1, 1, 2, 2)
        assert nn.AvgPool2d(2)(x).shape == (1, 1, 2, 2)

    def test_global_avg_pool_layer(self):
        x = Tensor(np.ones((2, 5, 3, 3)))
        np.testing.assert_allclose(nn.GlobalAvgPool2d()(x).data, np.ones((2, 5)))


class TestContainers:
    def test_sequential_forward_order(self):
        model = nn.Sequential(nn.Linear(4, 8, rng=np.random.default_rng(0)), nn.ReLU(), nn.Flatten())
        out = model(Tensor(np.ones((2, 4))))
        assert out.shape == (2, 8)
        assert (out.data >= 0).all()

    def test_sequential_append_and_index(self):
        model = nn.Sequential(nn.Linear(2, 2))
        model.append(nn.ReLU())
        assert len(model) == 2
        assert isinstance(model[1], nn.ReLU)

    def test_module_list_registers_parameters(self):
        modules = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(list(modules.parameters())) == 4
        assert len(modules) == 2

    def test_module_list_not_callable(self):
        with pytest.raises(RuntimeError):
            nn.ModuleList([])(None)


class TestTraining:
    def test_linear_model_learns_xor_like_split(self):
        """End-to-end sanity: a tiny MLP fits a separable blob problem."""
        rng = np.random.default_rng(0)
        x = np.vstack([rng.normal(-2, 0.3, (30, 2)), rng.normal(2, 0.3, (30, 2))])
        y = np.array([0] * 30 + [1] * 30)
        model = nn.Sequential(nn.Linear(2, 16, rng=rng), nn.ReLU(), nn.Linear(16, 2, rng=rng))
        optimizer = nn.SGD(model.parameters(), lr=0.1)
        loss_fn = nn.CrossEntropyLoss()
        for _ in range(60):
            optimizer.zero_grad()
            loss = loss_fn(model(Tensor(x)), y)
            loss.backward()
            optimizer.step()
        accuracy = nn.functional.accuracy(model(Tensor(x)), y)
        assert accuracy >= 0.95
