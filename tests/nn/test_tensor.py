"""Unit tests for the autograd Tensor."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, concatenate, no_grad, stack, where


class TestBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_detach_shares_data_but_not_graph(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert np.shares_memory(d.data, t.data)

    def test_copy_is_independent(self):
        t = Tensor([1.0, 2.0])
        c = t.copy()
        c.data[0] = 99.0
        assert t.data[0] == 1.0

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_len(self):
        assert len(Tensor(np.zeros((5, 2)))) == 5

    def test_zeros_ones_randn_constructors(self):
        assert Tensor.zeros((2, 3)).data.sum() == 0
        assert Tensor.ones((2, 3)).data.sum() == 6
        assert Tensor.randn(4, 5, rng=np.random.default_rng(0)).shape == (4, 5)


class TestArithmeticGradients:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_mul_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [3.0, 4.0])
        np.testing.assert_allclose(b.grad, [1.0, 2.0])

    def test_sub_and_neg_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a - b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [-1.0, -1.0])

    def test_div_backward(self):
        a = Tensor([4.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [-1.0])

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_matmul_backward(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        b = Tensor(np.arange(12, dtype=float).reshape(3, 4), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 4)) @ b.data.T)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((2, 4)))

    def test_radd_rmul_with_scalars(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (2.0 * a + 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 2.0])

    def test_rsub_rdiv(self):
        a = Tensor([2.0], requires_grad=True)
        (4.0 - a).backward()
        np.testing.assert_allclose(a.grad, [-1.0])
        b = Tensor([2.0], requires_grad=True)
        (4.0 / b).backward()
        np.testing.assert_allclose(b.grad, [-1.0])

    def test_gradient_accumulation_over_reuse(self):
        a = Tensor([2.0], requires_grad=True)
        (a * a).backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_broadcast_add_unbroadcasts_gradient(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((1, 3)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (1, 3)
        np.testing.assert_allclose(b.grad, [[2.0, 2.0, 2.0]])

    def test_broadcast_scalar_bias(self):
        a = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(b.grad, [4.0, 4.0, 4.0])


class TestReductionsAndShape:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_mean_gradient_scaled(self):
        a = Tensor(np.arange(4, dtype=float), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, [0.25] * 4)

    def test_mean_over_axis_tuple(self):
        a = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        out = a.mean(axis=(1, 2))
        assert out.shape == (2,)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3, 4), 1.0 / 12))

    def test_max_backward_routes_to_argmax(self):
        a = Tensor([[1.0, 5.0, 2.0]], requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.0, 1.0, 0.0]])

    def test_max_splits_ties(self):
        a = Tensor([[3.0, 3.0]], requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.5, 0.5]])

    def test_reshape_roundtrip_gradient(self):
        a = Tensor(np.arange(6, dtype=float), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(6))

    def test_reshape_accepts_tuple(self):
        a = Tensor(np.arange(6, dtype=float))
        assert a.reshape((3, 2)).shape == (3, 2)

    def test_transpose_gradient(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        (a.T * Tensor(np.arange(6, dtype=float).reshape(3, 2))).sum().backward()
        assert a.grad.shape == (2, 3)

    def test_getitem_gradient_scatters(self):
        a = Tensor(np.arange(5, dtype=float), requires_grad=True)
        a[1:3].sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 1.0, 0.0, 0.0])


class TestElementwise:
    def test_exp_log_roundtrip_gradient(self):
        a = Tensor([0.5, 1.5], requires_grad=True)
        a.exp().log().sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0], atol=1e-9)

    def test_relu_gradient_mask(self):
        a = Tensor([-1.0, 2.0], requires_grad=True)
        a.relu().sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])

    def test_sigmoid_at_zero(self):
        a = Tensor([0.0], requires_grad=True)
        out = a.sigmoid()
        assert out.item() == pytest.approx(0.5)
        out.backward()
        np.testing.assert_allclose(a.grad, [0.25])

    def test_tanh_gradient(self):
        a = Tensor([0.0], requires_grad=True)
        a.tanh().backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_sqrt(self):
        a = Tensor([4.0], requires_grad=True)
        a.sqrt().backward()
        np.testing.assert_allclose(a.grad, [0.25])

    def test_clip_gradient_zero_outside(self):
        a = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_abs_gradient_sign(self):
        a = Tensor([-2.0, 3.0], requires_grad=True)
        a.abs().sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0, 1.0])


class TestBackwardSemantics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_grad_argument(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            t.backward()
        t.backward(np.array([1.0, 1.0]))
        np.testing.assert_allclose(t.grad, [1.0, 1.0])

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).backward()
        t.zero_grad()
        assert t.grad is None

    def test_no_grad_disables_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad

    def test_no_grad_restores_state(self):
        from repro.nn.tensor import is_grad_enabled

        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_diamond_graph_accumulates_once_per_path(self):
        a = Tensor([1.0], requires_grad=True)
        b = a * 2
        c = a * 3
        (b + c).backward()
        np.testing.assert_allclose(a.grad, [5.0])

    def test_deep_chain_does_not_recurse(self):
        a = Tensor([1.0], requires_grad=True)
        x = a
        for _ in range(2000):
            x = x + 1.0
        x.backward()
        np.testing.assert_allclose(a.grad, [1.0])


class TestCombinators:
    def test_stack_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        stack([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_concatenate_gradient_splits(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        out = concatenate([a, b], axis=0)
        assert out.shape == (3,)
        (out * Tensor([1.0, 2.0, 3.0])).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])
        np.testing.assert_allclose(b.grad, [3.0])

    def test_where_routes_gradients(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([10.0, 20.0], requires_grad=True)
        where(np.array([True, False]), a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])


class TestNumericalGradients:
    def test_composite_expression_matches_numerical(self, gradcheck):
        rng = np.random.default_rng(0)
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((4, 2)), requires_grad=True)

        def build():
            return ((a @ b).tanh() * 2.0 + 1.0).sum()

        gradcheck(build, [a, b])

    def test_division_and_exp_matches_numerical(self, gradcheck):
        rng = np.random.default_rng(1)
        a = Tensor(rng.standard_normal((2, 3)) + 3.0, requires_grad=True)
        b = Tensor(rng.standard_normal((2, 3)) + 3.0, requires_grad=True)

        def build():
            return ((a / b).exp()).mean()

        gradcheck(build, [a, b])
