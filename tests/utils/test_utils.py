"""Tests for RNG management, checkpoints, logging and timing utilities."""

import time

import numpy as np
import pytest

from repro import nn
from repro.utils import (
    MetricHistory,
    Timer,
    derive_generator,
    get_logger,
    get_seed,
    load_checkpoint,
    load_json,
    new_generator,
    save_checkpoint,
    save_json,
    set_seed,
)


class TestRng:
    def test_set_get_seed(self):
        set_seed(123)
        assert get_seed() == 123

    def test_new_generator_uses_global_seed(self):
        set_seed(7)
        a = new_generator().standard_normal(4)
        b = new_generator().standard_normal(4)
        np.testing.assert_allclose(a, b)

    def test_explicit_seed_overrides_global(self):
        set_seed(7)
        a = new_generator(1).standard_normal(3)
        b = new_generator(2).standard_normal(3)
        assert not np.allclose(a, b)

    def test_derive_generator_streams_differ(self):
        base = new_generator(0)
        g1 = derive_generator(base, 1)
        base2 = new_generator(0)
        g2 = derive_generator(base2, 2)
        assert not np.allclose(g1.standard_normal(4), g2.standard_normal(4))


class TestCheckpoints:
    def test_roundtrip(self, tmp_path):
        model = nn.Sequential(nn.Linear(4, 3, rng=np.random.default_rng(0)), nn.BatchNorm1d(3))
        path = save_checkpoint(model, tmp_path / "ckpt.npz")
        clone = nn.Sequential(nn.Linear(4, 3, rng=np.random.default_rng(9)), nn.BatchNorm1d(3))
        load_checkpoint(clone, path)
        np.testing.assert_allclose(model[0].weight.data, clone[0].weight.data)

    def test_missing_file(self, tmp_path):
        model = nn.Linear(2, 2)
        with pytest.raises(FileNotFoundError):
            load_checkpoint(model, tmp_path / "missing.npz")

    def test_creates_parent_dirs(self, tmp_path):
        model = nn.Linear(2, 2)
        path = save_checkpoint(model, tmp_path / "deep" / "nested" / "ckpt.npz")
        assert path.exists()


class TestJson:
    def test_roundtrip_with_numpy_types(self, tmp_path):
        data = {"accuracy": np.float64(0.5), "counts": np.array([1, 2, 3]), "nested": {"x": np.int64(3)}}
        path = save_json(data, tmp_path / "result.json")
        loaded = load_json(path)
        assert loaded["accuracy"] == pytest.approx(0.5)
        assert loaded["counts"] == [1, 2, 3]
        assert loaded["nested"]["x"] == 3


class TestLogging:
    def test_logger_is_singleton_per_name(self):
        assert get_logger("repro.test") is get_logger("repro.test")

    def test_metric_history_series_and_latest(self):
        history = MetricHistory()
        history.log(loss=1.0, accuracy=0.2)
        history.log(loss=0.5)
        assert history.series("loss") == [1.0, 0.5]
        assert history.latest("accuracy") == 0.2
        assert history.latest("missing") is None
        assert len(history) == 2

    def test_metric_history_to_dicts_copy(self):
        history = MetricHistory()
        history.log(loss=1.0)
        records = history.to_dicts()
        records[0]["loss"] = 99.0
        assert history.latest("loss") == 1.0


class TestTimer:
    def test_measures_positive_duration(self):
        timer = Timer()
        with timer.measure("sleep"):
            time.sleep(0.01)
        assert timer.total("sleep") > 0.0
        assert timer.count("sleep") == 1
        assert timer.mean("sleep") == pytest.approx(timer.total("sleep"))

    def test_summary_contains_all_names(self):
        timer = Timer()
        with timer.measure("a"):
            pass
        with timer.measure("b"):
            pass
        assert set(timer.summary()) == {"a", "b"}

    def test_unknown_name_zero(self):
        assert Timer().total("nothing") == 0.0
