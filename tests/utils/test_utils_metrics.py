"""Edge-case tests for the metrics primitives (`repro.utils.metrics`).

The serving reports, SLO scorecards and sweep rows all route their
percentile math through this module, so the corner cases — empty data,
single samples, NaN observations, merging snapshots from crashed node
incarnations — must be pinned down here, once.
"""

import json
import math

import numpy as np
import pytest

from repro.utils.metrics import (
    DEFAULT_BUCKETS,
    LATENCY_QUANTILES,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    percentile,
    quantile_summary,
)


# ----------------------------------------------------------------------
# The canonical percentile helper
# ----------------------------------------------------------------------
class TestPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 95.0))

    def test_single_sample_is_that_sample_at_every_q(self):
        for q in (0.0, 50.0, 99.0, 100.0):
            assert percentile([3.5], q) == 3.5

    def test_matches_numpy_interpolation(self):
        values = [0.1, 0.5, 0.2, 0.9, 0.4]
        for q in (0.0, 25.0, 50.0, 95.0, 100.0):
            assert percentile(values, q) == pytest.approx(np.percentile(values, q))

    def test_q_out_of_range_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([1.0], -0.1)

    def test_quantile_summary_keys_and_empty(self):
        summary = quantile_summary([1.0, 2.0, 3.0])
        assert set(summary) == {f"p{q:g}" for q in LATENCY_QUANTILES}
        assert summary["p50"] == 2.0
        empty = quantile_summary([])
        assert all(math.isnan(value) for value in empty.values())


# ----------------------------------------------------------------------
# Histogram quantiles
# ----------------------------------------------------------------------
class TestHistogramQuantile:
    def test_empty_is_nan(self):
        histogram = Histogram("h")
        assert math.isnan(histogram.quantile(50.0))

    def test_single_sample_is_exact(self):
        histogram = Histogram("h")
        histogram.observe(3.7)
        for q in (0.0, 50.0, 100.0):
            assert histogram.quantile(q) == 3.7

    def test_identical_samples_are_exact(self):
        histogram = Histogram("h")
        for _ in range(10):
            histogram.observe(5.0)
        assert histogram.quantile(99.0) == 5.0

    def test_estimates_stay_inside_observed_envelope(self):
        histogram = Histogram("h")
        values = [0.5, 1.5, 3.0, 7.0, 20.0, 55.0]
        for value in values:
            histogram.observe(value)
        for q in (1.0, 25.0, 50.0, 75.0, 99.0):
            estimate = histogram.quantile(q)
            assert min(values) <= estimate <= max(values)

    def test_monotone_in_q(self):
        histogram = Histogram("h")
        rng = np.random.default_rng(0)
        for value in rng.uniform(0.0, 70.0, size=200):
            histogram.observe(float(value))
        estimates = [histogram.quantile(q) for q in (10, 25, 50, 75, 90, 99)]
        assert estimates == sorted(estimates)

    def test_overflow_bucket_clamps_to_max(self):
        histogram = Histogram("h", boundaries=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(100.0)  # overflow bucket
        assert histogram.quantile(100.0) == 100.0
        assert histogram.quantile(0.0) == 0.5

    def test_q_out_of_range_rejected(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            histogram.quantile(150.0)


# ----------------------------------------------------------------------
# Snapshots: NaN handling, empty histograms
# ----------------------------------------------------------------------
class TestSnapshots:
    def test_empty_histogram_snapshot_has_none_min_max(self):
        registry = MetricsRegistry()
        registry.histogram("latency")
        snap = registry.snapshot()
        assert snap["histograms"]["latency"]["min"] is None
        assert snap["histograms"]["latency"]["max"] is None
        assert snap["histograms"]["latency"]["count"] == 0
        json.dumps(snap)  # None, not NaN: strictly JSON-serialisable

    def test_nan_observation_lands_in_overflow_and_min_max_stay_finite_free(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", boundaries=(1.0,))
        histogram.observe(float("nan"))
        snap = registry.snapshot()["histograms"]["h"]
        # NaN fails every `value <= boundary` test -> overflow bucket.
        assert snap["counts"] == [0, 1]
        assert snap["count"] == 1
        # The sum is poisoned (NaN), which json.dumps refuses under
        # allow_nan=False — consumers sanitise, as SLOScorecard.to_dict
        # does.  Document the contract here.
        assert math.isnan(snap["sum"])

    def test_gauge_snapshot_tracks_last_and_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(5.0)
        gauge.set(2.0)
        assert registry.snapshot()["gauges"]["depth"] == {"last": 2.0, "max": 5.0}


class TestMergeSnapshots:
    def _snap(self, **counters):
        registry = MetricsRegistry()
        for name, value in counters.items():
            registry.counter(name).add(value)
        return registry.snapshot()

    def test_disjoint_keys_union(self):
        merged = merge_snapshots([self._snap(a=1), self._snap(b=2)])
        assert merged["counters"] == {"a": 1, "b": 2}

    def test_conflicting_counters_add(self):
        merged = merge_snapshots([self._snap(a=1, b=5), self._snap(a=3)])
        assert merged["counters"] == {"a": 4, "b": 5}

    def test_conflicting_gauges_keep_last_value_and_max_of_maxes(self):
        first = MetricsRegistry()
        first.gauge("g").set(10.0)
        second = MetricsRegistry()
        second.gauge("g").set(4.0)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert merged["gauges"]["g"] == {"last": 4.0, "max": 10.0}

    def test_histograms_add_counts_and_widen_envelope(self):
        first = MetricsRegistry()
        second = MetricsRegistry()
        for value in (1.0, 3.0):
            first.histogram("h").observe(value)
        second.histogram("h")  # empty: min/max None must not poison the merge
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert merged["histograms"]["h"]["count"] == 2
        assert merged["histograms"]["h"]["min"] == 1.0
        assert merged["histograms"]["h"]["max"] == 3.0

    def test_mismatched_boundaries_rejected(self):
        first = MetricsRegistry()
        first.histogram("h", boundaries=(1.0,)).observe(0.5)
        second = MetricsRegistry()
        second.histogram("h", boundaries=(2.0,)).observe(0.5)
        with pytest.raises(ValueError, match="boundaries"):
            merge_snapshots([first.snapshot(), second.snapshot()])

    def test_empty_and_missing_sections_tolerated(self):
        assert merge_snapshots([{}, {"counters": {"a": 1}}])["counters"] == {"a": 1}
        merged = merge_snapshots([])
        assert merged == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_default_buckets_are_sorted_and_frozen(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", boundaries=(2.0, 1.0))
