"""Tests for the serving observability subsystem (`repro.serving.observe`).

The contracts under test, in rough order of importance:

* **Bit-identity** — enabling tracing never changes a report.  Reports
  are compared through ``json.dumps(to_dict())`` (``as_dict`` payloads
  contain NaN, and ``NaN != NaN`` makes plain dict equality useless).
* **Determinism** — timestamps are simulated seconds, so the same spec
  produces the same event stream byte for byte.
* **Causality** — a node's event timeline is monotone: the coordinator
  may not stamp an event on a node earlier than the node's own clock.
* **Exporter validity** — the Chrome trace is strict JSON with every
  ``B`` matched by an ``E`` on its track and one flow per request.
"""

import json
import logging
import math
from pathlib import Path

import numpy as np
import pytest

from repro.serving import (
    EVENT_TYPES,
    ClusterSpec,
    JSONLSink,
    MemorySink,
    ObservabilitySpec,
    ServingSpec,
    TraceRecorder,
    load_jsonl,
    replay_queue_depth,
    serve,
    staleness_curve,
    timeline_frames,
    to_chrome_trace,
)
from repro.utils import MetricsRegistry, merge_snapshots
from repro.utils.errors import ConfigError

CHAOS_CONFIG = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "configs" / "cluster_faults.json"
)


# ----------------------------------------------------------------------
# Spec surface
# ----------------------------------------------------------------------
class TestObservabilitySpec:
    def test_default_is_off_and_builds_nothing(self):
        spec = ObservabilitySpec()
        assert not spec.enabled
        assert spec.build() is None

    def test_round_trip(self):
        spec = ObservabilitySpec(
            enabled=True,
            sink="jsonl",
            path="/tmp/t.jsonl",
            time_plan_levels=True,
            events=("step", "publish"),
        )
        recovered = ObservabilitySpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert recovered == spec

    def test_unknown_sink_rejected(self):
        with pytest.raises(ConfigError, match="sink"):
            ObservabilitySpec(sink="kafka")

    def test_jsonl_requires_path(self):
        with pytest.raises(ConfigError, match="path"):
            ObservabilitySpec(enabled=True, sink="jsonl")

    def test_unknown_event_type_rejected(self):
        with pytest.raises(ConfigError, match="event types"):
            ObservabilitySpec(events=("step", "teleport"))

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="fields"):
            ObservabilitySpec.from_dict({"enabled": True, "verbosity": 3})

    def test_serving_and_cluster_specs_coerce_mappings(self):
        node = ServingSpec(observe={"enabled": True, "capacity": 64})
        assert node.observe == ObservabilitySpec(enabled=True, capacity=64)
        cluster = ClusterSpec(nodes=(ServingSpec(),), observe={"enabled": False})
        assert cluster.observe == ObservabilitySpec()
        recovered = ClusterSpec.from_json(json.dumps(cluster.to_dict()))
        assert recovered.observe == cluster.observe

    def test_specs_default_observe_to_none(self):
        assert ServingSpec().observe is None
        assert ClusterSpec(nodes=(ServingSpec(),)).observe is None
        assert ClusterSpec(nodes=(ServingSpec(),)).to_dict()["observe"] is None


# ----------------------------------------------------------------------
# Recorder and sinks
# ----------------------------------------------------------------------
class TestTraceRecorder:
    def test_unknown_event_type_fails_loudly(self):
        recorder = TraceRecorder((MemorySink(),))
        with pytest.raises(ValueError, match="unknown event type"):
            recorder.emit("teleport", 0.0)

    def test_global_sequence_and_payload(self):
        recorder = TraceRecorder((MemorySink(),))
        recorder.emit("arrive", 0.5, node="n0", request_id=7, queue_depth=1)
        recorder.emit("crash", 1.0, node="n0")
        first, second = recorder.events
        assert [e["seq"] for e in (first, second)] == [0, 1]
        assert first == {
            "type": "arrive",
            "time": 0.5,
            "seq": 0,
            "node": "n0",
            "request_id": 7,
            "queue_depth": 1,
        }
        assert "request_id" not in second

    def test_event_whitelist_filters_but_keeps_sequencing(self):
        recorder = TraceRecorder((MemorySink(),), events=("crash",))
        recorder.emit("arrive", 0.0, node="n0")
        recorder.emit("crash", 1.0, node="n0")
        assert [e["type"] for e in recorder.events] == ["crash"]

    def test_ring_buffer_keeps_most_recent(self):
        recorder = TraceRecorder((MemorySink(capacity=3),))
        for index in range(10):
            recorder.emit("step", float(index))
        assert [e["time"] for e in recorder.events] == [7.0, 8.0, 9.0]

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigError, match="capacity"):
            MemorySink(capacity=0)

    def test_jsonl_sink_round_trips_memory_stream(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        recorder = TraceRecorder((MemorySink(), JSONLSink(path)))
        recorder.emit("arrive", 0.125, node="n0", request_id=1)
        recorder.emit("finalize", 0.25, node="n0", request_id=1, status="completed")
        recorder.close()
        assert load_jsonl(path) == recorder.events


# ----------------------------------------------------------------------
# The chaos fleet, traced end to end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def chaos_run():
    """Serve the checked-in chaos config once disabled and once enabled."""
    from repro.serving import ServingCluster

    spec = ClusterSpec.from_json(CHAOS_CONFIG)
    disabled = serve(None, spec)
    fleet = ServingCluster.from_spec(spec)
    recorder = ObservabilitySpec(enabled=True).build()
    report = fleet.serve(recorder=recorder)
    recorder.close()
    return disabled, report, recorder.events


@pytest.fixture(scope="module")
def chaos_events(chaos_run):
    return chaos_run[2]


class TestClusterTracing:
    def test_enabling_tracing_keeps_reports_bit_identical(self, chaos_run):
        disabled, enabled, events = chaos_run
        assert events, "enabled chaos run emitted no events"
        assert json.dumps(disabled.to_dict(), sort_keys=True) == json.dumps(
            enabled.to_dict(), sort_keys=True
        )

    def test_event_stream_is_deterministic(self, chaos_events):
        spec = ClusterSpec.from_json(CHAOS_CONFIG)
        from dataclasses import replace
        from repro.serving import ServingCluster

        fleet = ServingCluster.from_spec(
            replace(spec, observe=ObservabilitySpec(enabled=True))
        )
        recorder = fleet.observe.build()
        fleet.serve(recorder=recorder)
        recorder.close()
        assert json.dumps(recorder.events, sort_keys=True) == json.dumps(
            chaos_events, sort_keys=True
        )

    def test_only_known_event_types(self, chaos_events):
        assert {event["type"] for event in chaos_events} <= EVENT_TYPES

    def test_global_sequence_is_gapless(self, chaos_events):
        assert [event["seq"] for event in chaos_events] == list(range(len(chaos_events)))

    def test_per_node_timestamps_monotone(self, chaos_events):
        """A node cannot learn of an event before its own clock reached it."""
        last = {}
        for event in chaos_events:
            node = event.get("node")
            if node is None:
                continue
            assert event["time"] >= last.get(node, 0.0) - 1e-12, (
                f"node {node}: {event['type']} at t={event['time']} "
                f"before t={last[node]}"
            )
            last[node] = event["time"]

    def test_chaos_config_exercises_fault_events(self, chaos_events):
        types = {event["type"] for event in chaos_events}
        assert {"crash", "recover", "retry", "degrade", "publish"} <= types

    def test_every_arrival_reaches_exactly_one_finalize(self, chaos_events):
        arrived = [e["request_id"] for e in chaos_events if e["type"] == "arrive"]
        finalized = [e["request_id"] for e in chaos_events if e["type"] == "finalize"]
        assert set(arrived) == set(finalized)
        # One terminal decision per request — failover must not double-count.
        assert len(finalized) == len(set(finalized))
        statuses = {e["status"] for e in chaos_events if e["type"] == "finalize"}
        assert statuses <= {"completed", "dropped", "starved", "rejected", "lost"}

    def test_steps_nest_inside_request_lifetimes(self, chaos_events):
        """Every step of a request happens after its arrival on that node."""
        arrivals = {}
        for event in chaos_events:
            if event["type"] == "arrive":
                arrivals.setdefault((event["node"], event["request_id"]), event["time"])
        for event in chaos_events:
            if event["type"] != "step":
                continue
            key = (event["node"], event["request_id"])
            assert key in arrivals, f"step without arrival: {event}"
            assert event["time"] >= arrivals[key] - 1e-12

    def test_timeline_frames_cover_all_nodes(self, chaos_events):
        frames = timeline_frames(chaos_events)
        nodes = {e["node"] for e in chaos_events if "node" in e}
        assert set(frames) == nodes
        for signals in frames.values():
            for series in signals.values():
                times = [t for t, _ in series]
                assert times == sorted(times)


class TestChromeTrace:
    def test_export_is_strict_json_with_matched_spans_and_flows(self, chaos_events):
        trace = to_chrome_trace(chaos_events)
        json.dumps(trace)  # strict: no NaN/Infinity survives the export
        events = trace["traceEvents"]
        open_spans = {}
        flow_starts = {}
        for event in events:
            if event["ph"] == "B":
                key = (event["pid"], event["tid"])
                open_spans[key] = open_spans.get(key, 0) + 1
            elif event["ph"] == "E":
                key = (event["pid"], event["tid"])
                open_spans[key] = open_spans.get(key, 0) - 1
            elif event["ph"] == "s":
                flow_starts[event["id"]] = flow_starts.get(event["id"], 0) + 1
        assert all(count == 0 for count in open_spans.values())
        stepped = {e["request_id"] for e in chaos_events if e["type"] == "step"}
        assert set(flow_starts) == stepped
        assert all(count == 1 for count in flow_starts.values())

    def test_nodes_become_named_processes(self, chaos_events):
        trace = to_chrome_trace(chaos_events)
        names = {
            event["args"]["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        nodes = {e["node"] for e in chaos_events if "node" in e}
        assert names == {f"node:{node}" for node in nodes}

    def test_starved_steps_collapse_to_zero_duration(self):
        events = [
            {"type": "step", "time": 1.0, "seq": 0, "node": "n0", "request_id": 0,
             "subnet": 2, "finish": None},
        ]
        trace = to_chrome_trace(events)
        begin, end = [e for e in trace["traceEvents"] if e["ph"] in "BE"]
        assert begin["ts"] == end["ts"] == 1e6
        assert begin["args"]["starved"] is True


class TestReplay:
    def test_staleness_curve_matches_publish_events(self, chaos_events):
        curve = staleness_curve(chaos_events)
        publishes = [e for e in chaos_events if e["type"] == "publish"]
        assert curve["num_samples"] == len(publishes) > 0
        assert curve["max_abs_error"] >= 0
        recomputed = [
            abs(e["fluid_depth"] - e["live_depth"])
            for e in publishes
            if e.get("fluid_depth") is not None and e.get("live_depth") is not None
        ]
        assert math.isclose(
            curve["mean_abs_error"], sum(recomputed) / len(recomputed), rel_tol=1e-12
        )
        assert curve["max_abs_error"] == max(recomputed)

    def test_replayed_queue_depth_is_exact_counting(self, chaos_events):
        series = replay_queue_depth(chaos_events)
        assert series
        for node, points in series.items():
            times = [t for t, _ in points]
            assert times == sorted(times)
            assert all(depth >= 0 for _, depth in points)

    def test_jsonl_trace_round_trips_through_disk(self, tmp_path):
        spec = ClusterSpec.from_json(CHAOS_CONFIG)
        from dataclasses import replace
        from repro.serving import ServingCluster

        path = tmp_path / "trace.jsonl"
        observe = ObservabilitySpec(enabled=True, sink="jsonl", path=str(path))
        ServingCluster.from_spec(replace(spec, observe=observe)).serve()
        events = load_jsonl(path)
        assert events
        json.dumps(events)  # strict JSON all the way down
        assert [e["seq"] for e in events] == list(range(len(events)))


# ----------------------------------------------------------------------
# Engine-level tracing and the plan timer
# ----------------------------------------------------------------------
class TestEngineTracing:
    @pytest.fixture
    def engine_spec(self, stepping_network):
        largest = float(stepping_network.subnet_macs(stepping_network.num_subnets - 1))
        return ServingSpec(
            backend="stepping",
            scheduler="edf",
            trace="constant",
            trace_rate=largest / 0.5,
            overhead_per_step=0.0,
        )

    @pytest.fixture
    def requests(self, sample_pool):
        from repro.serving import poisson_stream

        images, labels = sample_pool
        return poisson_stream(
            images, labels, rate=4.0, num_requests=12, relative_deadline=1.5,
            batch_size=2, seed=0,
        )

    def test_engine_reports_bit_identical_with_tracing(
        self, stepping_network, engine_spec, requests
    ):
        from dataclasses import replace

        plain = engine_spec.build_engine(stepping_network).serve(requests)
        traced_spec = replace(engine_spec, observe=ObservabilitySpec(enabled=True))
        traced = traced_spec.build_engine(stepping_network).serve(requests)
        assert json.dumps(plain.to_dict(), sort_keys=True) == json.dumps(
            traced.to_dict(), sort_keys=True
        )

    def test_explicit_recorder_sees_request_lifecycle(
        self, stepping_network, engine_spec, requests
    ):
        recorder = ObservabilitySpec(enabled=True).build()
        engine_spec.build_engine(stepping_network).serve(requests, recorder=recorder)
        recorder.close()
        types = {event["type"] for event in recorder.events}
        assert {"arrive", "enqueue", "dispatch", "step", "finalize"} <= types
        finalized = [e for e in recorder.events if e["type"] == "finalize"]
        assert len(finalized) == len(requests)

    def test_plan_timer_only_when_requested(
        self, stepping_network, engine_spec, requests
    ):
        recorder = ObservabilitySpec(enabled=True, time_plan_levels=True).build()
        engine = engine_spec.build_engine(stepping_network)
        engine.serve(requests[:4], recorder=recorder)
        recorder.close()
        summary = recorder.plan_timer.summary()
        assert summary and all(row["count"] > 0 for row in summary.values())
        assert all(row["total"] >= 0.0 for row in summary.values())

        plain = ObservabilitySpec(enabled=True).build()
        assert plain.plan_timer is None


# ----------------------------------------------------------------------
# Metrics registry: the substrate reports consume
# ----------------------------------------------------------------------
class TestMetricsInReports:
    def test_cluster_report_carries_metrics_snapshot(self, chaos_run):
        disabled, enabled, _ = chaos_run
        for report in (disabled, enabled):
            counters = report.metrics["counters"]
            assert counters["failovers"] == report.failovers
            assert counters["degraded_admissions"] == report.degraded_admissions
            assert counters["rejected"] == report.rejected
            assert counters["lost"] == report.lost

    def test_metrics_present_even_without_faults(self, stepping_network, sample_pool):
        from repro.serving import ServingCluster, poisson_stream

        images, labels = sample_pool
        largest = float(stepping_network.subnet_macs(stepping_network.num_subnets - 1))
        spec = ServingSpec(
            backend="stepping", trace="constant", trace_rate=largest / 0.5
        )
        cluster = ServingCluster.from_spec(
            ClusterSpec(nodes=(spec, spec)), stepping_network
        )
        report = cluster.serve(
            poisson_stream(images, labels, rate=4.0, num_requests=6, batch_size=2, seed=0)
        )
        counters = report.metrics["counters"]
        # Coordinator counters exist as explicit zeros in every mode.
        assert {"migrations", "failovers", "degraded_admissions", "rejected", "lost"} <= set(
            counters
        )
        assert counters["failovers"] == 0

    def test_merge_snapshots_folds_incarnations(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("retries").add(2)
        second.counter("retries").add(3)
        second.counter("lost").add(1)
        first.gauge("depth").set(5.0)
        second.gauge("depth").set(2.0)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert merged["counters"] == {"lost": 1, "retries": 5}
        assert merged["gauges"]["depth"] == {"last": 2.0, "max": 5.0}


# ----------------------------------------------------------------------
# Serving-layer logging
# ----------------------------------------------------------------------
class TestServingLogging:
    def test_env_knob_selects_level(self, monkeypatch):
        from repro.utils.logging import get_logger

        monkeypatch.setenv("REPRO_LOG_LEVEL", "ERROR")
        # Configuration is once per name: use a fresh one to see the env.
        logger = get_logger("repro.test-observe-env-knob")
        assert logger.level == logging.ERROR

    def test_numeric_level_accepted(self, monkeypatch):
        from repro.utils.logging import get_logger

        monkeypatch.setenv("REPRO_LOG_LEVEL", "10")
        assert get_logger("repro.test-observe-env-numeric").level == logging.DEBUG

    def test_serving_warnings_use_shared_logger(self, chaos_events, caplog):
        """The chaos run above logged through `repro.serving`; re-run one
        crash scenario and capture it."""
        logger = logging.getLogger("repro.serving")
        spec = ClusterSpec.from_json(CHAOS_CONFIG)
        with caplog.at_level(logging.WARNING, logger="repro.serving"):
            logger.propagate = True
            try:
                serve(None, spec)
            finally:
                logger.propagate = False
        messages = [record.getMessage() for record in caplog.records]
        assert any("crashed" in message for message in messages)
        assert any("degraded request" in message for message in messages)
