"""Tests for the event-driven serving engine."""

import math

import numpy as np
import pytest

from repro.runtime.platform import ResourceTrace
from repro.runtime.policies import ConfidencePolicy, GreedyPolicy, LoadAdaptivePolicy
from repro.serving import (
    RecomputeBackend,
    Request,
    ServingEngine,
    SteppingBackend,
    periodic_stream,
    poisson_stream,
)


@pytest.fixture
def fast_trace():
    return ResourceTrace.constant(1e12, name="fast")


def _calibrated_trace(network, seconds_for_largest=0.5):
    largest = float(network.subnet_macs(network.num_subnets - 1))
    return ResourceTrace.constant(largest / seconds_for_largest, name="calibrated")


def test_latencies_returns_isolated_copy(stepping_network, sample_pool, fast_trace):
    """Mutating a latencies() result must not corrupt the memoised metrics."""
    images, _ = sample_pool
    requests = [
        Request(request_id=i, arrival_time=float(i), inputs=images[:1]) for i in range(4)
    ]
    report = ServingEngine(SteppingBackend(stepping_network), fast_trace).serve(requests)
    before = report.p95_latency
    values = report.latencies()
    values *= 1000.0  # e.g. a caller converting to milliseconds in place
    assert report.p95_latency == before


class TestServeBasics:
    def test_all_requests_finalised(self, stepping_network, sample_pool, fast_trace):
        images, labels = sample_pool
        requests = poisson_stream(images, labels, rate=5.0, num_requests=20, batch_size=2, seed=0)
        report = ServingEngine(SteppingBackend(stepping_network), fast_trace).serve(requests)
        assert report.num_jobs == 20
        assert len(report.completed_jobs) == 20
        assert all(job.final_subnet == stepping_network.num_subnets - 1 for job in report.jobs)

    def test_report_identity_fields(self, stepping_network, sample_pool, fast_trace):
        images, labels = sample_pool
        requests = poisson_stream(images, labels, rate=5.0, num_requests=4, seed=0)
        report = ServingEngine(SteppingBackend(stepping_network), fast_trace, "edf").serve(requests)
        assert report.backend_name == "steppingnet"
        assert report.scheduler_name == "edf"
        assert report.trace_name == "fast"

    def test_jobs_sorted_by_request_id(self, stepping_network, sample_pool, fast_trace):
        images, labels = sample_pool
        requests = poisson_stream(images, labels, rate=5.0, num_requests=10, seed=0)
        report = ServingEngine(SteppingBackend(stepping_network), fast_trace).serve(requests)
        ids = [job.request.request_id for job in report.jobs]
        assert ids == sorted(ids)

    def test_empty_stream(self, stepping_network, fast_trace):
        report = ServingEngine(SteppingBackend(stepping_network), fast_trace).serve([])
        assert report.num_jobs == 0
        assert report.throughput == 0.0
        assert math.isnan(report.p95_latency)

    def test_as_dict_keys(self, stepping_network, sample_pool, fast_trace):
        images, labels = sample_pool
        requests = poisson_stream(images, labels, rate=5.0, num_requests=5, seed=0)
        payload = ServingEngine(SteppingBackend(stepping_network), fast_trace).serve(requests).as_dict()
        assert {
            "throughput_rps",
            "p50_latency",
            "p95_latency",
            "p99_latency",
            "deadline_miss_rate",
            "total_macs",
        } <= set(payload)

    def test_invalid_overhead_rejected(self, stepping_network, fast_trace):
        with pytest.raises(ValueError):
            ServingEngine(SteppingBackend(stepping_network), fast_trace, overhead_per_step=-1.0)

    def test_duplicate_request_ids_rejected(self, stepping_network, fast_trace):
        inputs = np.zeros((1, 3, 12, 12))
        duplicates = [
            Request(request_id=7, arrival_time=0.0, inputs=inputs),
            Request(request_id=7, arrival_time=0.1, inputs=inputs),
        ]
        with pytest.raises(ValueError, match="request_id"):
            ServingEngine(SteppingBackend(stepping_network), fast_trace).serve(duplicates)


class TestQueueingBehaviour:
    def test_waiting_requests_queue(self, stepping_network, sample_pool):
        """Simultaneous arrivals share one accelerator: later jobs wait."""
        images, labels = sample_pool
        trace = _calibrated_trace(stepping_network)
        requests = periodic_stream(images, labels, period=1e-6, num_requests=5, batch_size=2)
        report = ServingEngine(SteppingBackend(stepping_network), trace, "fifo").serve(requests)
        delays = [job.queueing_delay for job in report.jobs]
        assert max(delays) > 0.0

    def test_makespan_and_throughput_consistent(self, stepping_network, sample_pool):
        images, labels = sample_pool
        trace = _calibrated_trace(stepping_network)
        requests = periodic_stream(images, labels, period=0.7, num_requests=6, batch_size=2)
        report = ServingEngine(SteppingBackend(stepping_network), trace).serve(requests)
        assert report.throughput == pytest.approx(
            len(report.completed_jobs) / report.makespan
        )

    def test_stepping_beats_recompute_at_deadline(self, stepping_network, sample_pool):
        images, labels = sample_pool
        trace = _calibrated_trace(stepping_network)
        requests = poisson_stream(
            images, labels, rate=1.2, num_requests=30, relative_deadline=0.8, batch_size=2, seed=0
        )
        stepping = ServingEngine(SteppingBackend(stepping_network), trace).serve(requests)
        recompute = ServingEngine(RecomputeBackend(stepping_network), trace).serve(requests)
        assert stepping.mean_subnet_at_deadline > recompute.mean_subnet_at_deadline
        assert stepping.total_macs < recompute.total_macs
        assert stepping.total_macs_reused > 0.0
        assert recompute.total_macs_reused == 0.0


class TestPreemption:
    def test_edf_preempts_in_flight_job(self, stepping_network):
        """An urgent arrival takes the accelerator at the next step
        boundary, before the running job's remaining levels."""
        inputs = np.zeros((2, 3, 12, 12))
        trace = _calibrated_trace(stepping_network, seconds_for_largest=1.0)
        relaxed = Request(request_id=0, arrival_time=0.0, inputs=inputs, deadline=50.0)
        urgent = Request(request_id=1, arrival_time=0.05, inputs=inputs, deadline=1.2)
        report = ServingEngine(
            SteppingBackend(stepping_network, policy=GreedyPolicy()), trace, "edf"
        ).serve([relaxed, urgent])
        relaxed_job, urgent_job = report.jobs

        # The relaxed job started first (it was alone), but the urgent job
        # finished its work before the relaxed job's last step.
        assert relaxed_job.steps[0].start_time < urgent_job.steps[0].start_time
        assert urgent_job.completion_time < relaxed_job.completion_time
        # True preemption: the relaxed job has steps both before and after
        # the urgent job's execution window.
        before = [s for s in relaxed_job.steps if s.finish_time <= urgent_job.steps[0].start_time + 1e-9]
        after = [s for s in relaxed_job.steps if s.start_time >= urgent_job.completion_time - 1e-9]
        assert before and after

    def test_preempted_job_keeps_reuse(self, stepping_network):
        """Resuming after preemption still only pays delta MACs."""
        inputs = np.zeros((2, 3, 12, 12))
        trace = _calibrated_trace(stepping_network, seconds_for_largest=1.0)
        relaxed = Request(request_id=0, arrival_time=0.0, inputs=inputs, deadline=50.0)
        urgent = Request(request_id=1, arrival_time=0.05, inputs=inputs, deadline=1.2)
        report = ServingEngine(SteppingBackend(stepping_network), trace, "edf").serve(
            [relaxed, urgent]
        )
        relaxed_job = report.jobs[0]
        total_charged = relaxed_job.total_macs_charged
        assert total_charged == pytest.approx(
            stepping_network.subnet_macs(stepping_network.num_subnets - 1)
        )


class TestDeadlines:
    def test_drop_expired_skips_unstarted_jobs(self, stepping_network):
        inputs = np.zeros((2, 3, 12, 12))
        trace = _calibrated_trace(stepping_network, seconds_for_largest=1.0)
        # One long job plus a request whose deadline expires while queued.
        long_job = Request(request_id=0, arrival_time=0.0, inputs=inputs, deadline=10.0)
        doomed = Request(request_id=1, arrival_time=0.1, inputs=inputs, deadline=0.2)
        report = ServingEngine(
            SteppingBackend(stepping_network), trace, "fifo", drop_expired=True
        ).serve([long_job, doomed])
        dropped = report.jobs[1]
        assert dropped.status == "dropped"
        assert dropped.steps == []
        assert not dropped.deadline_met
        assert report.deadline_miss_rate == pytest.approx(0.5)

    def test_without_drop_expired_everyone_gets_an_answer(self, stepping_network):
        inputs = np.zeros((2, 3, 12, 12))
        trace = _calibrated_trace(stepping_network, seconds_for_largest=1.0)
        long_job = Request(request_id=0, arrival_time=0.0, inputs=inputs, deadline=10.0)
        doomed = Request(request_id=1, arrival_time=0.1, inputs=inputs, deadline=0.2)
        report = ServingEngine(
            SteppingBackend(stepping_network), trace, "fifo", drop_expired=False
        ).serve([long_job, doomed])
        assert all(job.steps for job in report.jobs)

    def test_enforce_deadline_stops_refinement(self, stepping_network):
        inputs = np.zeros((2, 3, 12, 12))
        trace = _calibrated_trace(stepping_network, seconds_for_largest=1.0)
        # Policy that never stops on its own; the engine's deadline stop
        # must end the job once time passes its deadline.
        policy = ConfidencePolicy(threshold=1.0, respect_deadline=False)
        request = Request(request_id=0, arrival_time=0.0, inputs=inputs, deadline=0.15)
        report = ServingEngine(
            SteppingBackend(stepping_network, policy=policy),
            trace,
            enforce_deadline=True,
        ).serve([request])
        job = report.jobs[0]
        assert job.stop_reason == "deadline reached"
        assert job.final_subnet < stepping_network.num_subnets - 1

    def test_no_post_deadline_step_after_preemption(self, stepping_network):
        """A job preempted past its deadline must not execute another
        refinement step when it is finally re-selected (regression: the
        continuation conditions used to be checked only right after the
        job's own step, so re-dispatch ran one stale step)."""
        inputs = np.zeros((2, 3, 12, 12))
        trace = _calibrated_trace(stepping_network, seconds_for_largest=1.0)
        # Victim finishes its first level quickly, then a pile of urgent
        # requests occupies the accelerator until well past its deadline.
        victim = Request(request_id=0, arrival_time=0.0, inputs=inputs, deadline=0.9)
        urgent = [
            Request(request_id=1 + i, arrival_time=0.05, inputs=inputs, deadline=0.5 + 2.0 * i)
            for i in range(4)
        ]
        report = ServingEngine(
            SteppingBackend(stepping_network), trace, "edf", enforce_deadline=True
        ).serve([victim] + urgent)
        victim_job = report.jobs[0]
        assert all(
            step.start_time <= victim_job.request.deadline + 1e-9 for step in victim_job.steps
        )
        # Finalised without a stale step: either the dispatch-time deadline
        # check or the policy's own deadline estimate stopped it.
        assert victim_job.stop_reason in (
            "deadline reached",
            "largest subnet reached",
            "next step would miss the deadline",
        )

    def test_starved_trace_finalises_jobs(self, stepping_network):
        inputs = np.zeros((2, 3, 12, 12))
        trace = ResourceTrace.constant(0.0, name="dead")
        request = Request(request_id=0, arrival_time=0.0, inputs=inputs, deadline=1.0)
        report = ServingEngine(SteppingBackend(stepping_network), trace).serve([request])
        job = report.jobs[0]
        assert job.status == "starved"
        assert math.isinf(job.steps[0].finish_time)
        assert not job.deadline_met


class TestSchedulerIsolation:
    def test_engines_sharing_a_scheduler_instance_do_not_alias(
        self, stepping_network, sample_pool, fast_trace
    ):
        """Regression: ``serve()`` used to mutate the shared instance in
        place, so two engines handed one Scheduler corrupted each other's
        ready queues.  Engines now clone per serve()."""
        from repro.serving import EDFScheduler

        images, labels = sample_pool
        shared = EDFScheduler()
        engine_a = ServingEngine(SteppingBackend(stepping_network), fast_trace, shared)
        engine_b = ServingEngine(SteppingBackend(stepping_network), fast_trace, shared)
        requests = poisson_stream(images, labels, rate=5.0, num_requests=6, seed=0)
        report_a = engine_a.serve(requests)
        assert len(shared) == 0  # the shared instance was never touched
        report_b = engine_b.serve(requests)
        assert report_a.as_dict() == report_b.as_dict()
        assert report_a.scheduler_name == "edf"

    def test_scheduler_accepts_name_class_and_instance(self, stepping_network, fast_trace):
        from repro.serving import EDFScheduler

        backend = SteppingBackend(stepping_network)
        for spec in ("edf", EDFScheduler, EDFScheduler()):
            engine = ServingEngine(backend, fast_trace, spec)
            assert engine.scheduler.name == "edf"

    def test_clone_produces_fresh_queue(self, stepping_network):
        from repro.serving import PriorityScheduler

        original = PriorityScheduler()
        clone = original.clone()
        assert type(clone) is PriorityScheduler
        assert clone is not original
        assert len(clone) == 0


class TestExpiryHeap:
    def test_many_expiring_jobs_drop_identically(self, stepping_network):
        """The heap-based admission control must drop exactly the jobs the
        old O(n) ready-set scan dropped: unstarted, deadline passed."""
        inputs = np.zeros((2, 3, 12, 12))
        trace = _calibrated_trace(stepping_network, seconds_for_largest=1.0)
        # A long head-of-line job, then a spread of queued requests whose
        # deadlines straddle its completion.
        requests = [Request(request_id=0, arrival_time=0.0, inputs=inputs, deadline=30.0)]
        for index in range(1, 9):
            requests.append(
                Request(
                    request_id=index,
                    arrival_time=0.05 * index,
                    inputs=inputs,
                    deadline=0.05 * index + (0.3 if index % 2 else 5.0),
                )
            )
        report = ServingEngine(
            SteppingBackend(stepping_network), trace, "fifo", drop_expired=True
        ).serve(requests)
        by_id = {job.request.request_id for job in report.dropped_jobs}
        # FIFO keeps the accelerator on job 0 for ~1 s: every tight-deadline
        # request expired unstarted, every relaxed one eventually ran.
        assert by_id == {1, 3, 5, 7}
        for job in report.jobs:
            if job.status == "dropped":
                assert job.steps == []
            else:
                assert job.steps

    def test_started_jobs_never_dropped_by_expiry(self, stepping_network):
        """A job that got its mandatory first level before the deadline is
        not admission-dropped when the deadline later passes."""
        inputs = np.zeros((2, 3, 12, 12))
        trace = _calibrated_trace(stepping_network, seconds_for_largest=1.0)
        victim = Request(request_id=0, arrival_time=0.0, inputs=inputs, deadline=0.9)
        backlog = [
            Request(request_id=1 + i, arrival_time=0.05, inputs=inputs, deadline=0.5 + 2.0 * i)
            for i in range(3)
        ]
        report = ServingEngine(
            SteppingBackend(stepping_network), trace, "edf", drop_expired=True
        ).serve([victim] + backlog)
        victim_job = report.jobs[0]
        assert victim_job.status == "completed"
        assert victim_job.steps


class TestLoadAdaptivePolicy:
    def test_yields_under_load_refines_when_idle(self, stepping_network, sample_pool):
        images, labels = sample_pool
        trace = _calibrated_trace(stepping_network)
        backend = SteppingBackend(stepping_network, policy=LoadAdaptivePolicy(max_queue_depth=0))
        # A burst: while others wait, each job stops after its mandatory
        # level; the last job (empty queue) refines to the top.
        requests = periodic_stream(images, labels, period=1e-6, num_requests=4, batch_size=2)
        report = ServingEngine(backend, trace, "fifo").serve(requests)
        subnets = [job.final_subnet for job in report.jobs]
        assert subnets[:-1] == [0] * (len(subnets) - 1)
        assert subnets[-1] == stepping_network.num_subnets - 1
