"""Tests for trace analytics (`repro.serving.analyze`).

The headline contract is the ISSUE's acceptance criterion: the latency
decomposition is *complete and exact* — for every finalized request on a
traced run, the six phase durations sum to ``finish - arrival`` — and it
holds across batched, continuous, memory-bounded and faulty fleets, not
just the happy path.
"""

import json
import math
from pathlib import Path

import pytest

from repro.serving import (
    ClusterSpec,
    ObservabilitySpec,
    ServingCluster,
    SLOScorecard,
    SLOSpec,
    PHASES,
    critical_path,
    decompose_latency,
    decomposition_summary,
    evaluate_slo,
    utilization_timeline,
)
from repro.serving.analyze import _intersect, _measure, _merge, _subtract
from repro.utils.errors import ConfigError

CONFIG_DIR = Path(__file__).resolve().parents[2] / "benchmarks" / "configs"

#: The fleet flavors of the exactness property test: request coalescing,
#: mid-wave refill, bounded memory with recompute-on-resume, and chaos
#: (crashes, retries, partitions, degrading admission).
FLEET_CONFIGS = (
    "cluster_batched.json",
    "cluster_continuous.json",
    "cluster_memory.json",
    "cluster_faults.json",
)


def traced_run(config_name):
    spec = ClusterSpec.from_json(CONFIG_DIR / config_name)
    recorder = ObservabilitySpec(enabled=True).build()
    cluster = ServingCluster.from_spec(spec)
    try:
        report = cluster.serve(recorder=recorder)
    finally:
        recorder.close()
    return report, recorder.events


# ----------------------------------------------------------------------
# Interval arithmetic (the decomposition's foundation)
# ----------------------------------------------------------------------
class TestIntervalHelpers:
    def test_merge_unions_overlaps(self):
        assert _merge([(0, 2), (1, 3), (5, 6)]) == [(0, 3), (5, 6)]

    def test_merge_drops_empty(self):
        assert _merge([(1, 1), (2, 1)]) == []

    def test_subtract_splits(self):
        assert _subtract([(0, 10)], [(2, 3), (5, 7)]) == [(0, 2), (3, 5), (7, 10)]

    def test_subtract_disjoint_is_identity(self):
        assert _subtract([(0, 1)], [(2, 3)]) == [(0, 1)]

    def test_intersect(self):
        assert _intersect([(0, 5)], [(1, 2), (4, 9)]) == [(1, 2), (4, 5)]

    def test_measure_counts_overlap_once(self):
        assert _measure([(0, 2), (1, 3)]) == 3.0

    def test_partition_identity(self):
        # subtract + intersect partition the original measure exactly.
        span, holes = [(0.0, 10.0)], [(1.5, 2.5), (4.0, 7.0)]
        kept = _measure(_subtract(span, holes))
        removed = _measure(_intersect(span, holes))
        assert kept + removed == pytest.approx(10.0)


# ----------------------------------------------------------------------
# The exactness property
# ----------------------------------------------------------------------
class TestDecompositionExactness:
    @pytest.mark.parametrize("config", FLEET_CONFIGS)
    def test_phases_sum_to_residence_for_every_request(self, config):
        report, events = traced_run(config)
        decompositions = decompose_latency(events)
        finalized = {
            event["request_id"] for event in events if event["type"] == "finalize"
        }
        assert len(decompositions) == len(finalized) > 0
        for decomposition in decompositions:
            total = sum(decomposition.phases.values())
            assert total == pytest.approx(decomposition.residence, rel=1e-9, abs=1e-9), (
                f"request {decomposition.request_id}: phases {decomposition.phases} "
                f"sum to {total}, residence {decomposition.residence}"
            )
            for phase, value in decomposition.phases.items():
                assert value >= -1e-9, (
                    f"request {decomposition.request_id}: phase {phase} negative ({value})"
                )
            assert set(decomposition.phases) == set(PHASES)

    @pytest.mark.parametrize("config", FLEET_CONFIGS)
    def test_rejected_requests_are_not_decomposed(self, config):
        _, events = traced_run(config)
        rejected = {e["request_id"] for e in events if e["type"] == "reject"}
        decomposed = {d.request_id for d in decompose_latency(events)}
        assert rejected.isdisjoint(decomposed)

    def test_chaos_run_attributes_backoff_and_hold(self):
        _, events = traced_run("cluster_faults.json")
        summary = decomposition_summary(decompose_latency(events))
        # Transient faults trigger retries; the crash window shows up as
        # time held off any serving node.
        assert summary["phase_seconds"]["retry_backoff"] > 0.0
        assert summary["phase_seconds"]["partition_hold"] > 0.0

    def test_memory_bounded_run_attributes_replay_recompute(self):
        _, events = traced_run("cluster_memory.json")
        summary = decomposition_summary(decompose_latency(events))
        # Evicted activations are recomputed on resume; that share of
        # compute must be carved out as replay.
        assert summary["phase_seconds"]["replay_recompute"] > 0.0

    def test_empty_events_decompose_to_nothing(self):
        assert decompose_latency([]) == []


# ----------------------------------------------------------------------
# Synthetic traces with known answers
# ----------------------------------------------------------------------
def _event(seq, type_, time, **payload):
    return dict(payload, seq=seq, type=type_, time=time)


class TestDecompositionSynthetic:
    def test_coalesce_and_queue_split(self):
        events = [
            _event(0, "arrive", 0.0, node="n0", request_id=1, arrival=0.0, deadline=None),
            _event(1, "enqueue", 0.0, node="n0", request_id=1, queue_depth=1),
            _event(2, "coalesce_wait", 0.1, node="n0", wait_until=0.3, pending=1, reason="window"),
            _event(3, "step", 0.5, node="n0", request_id=1, wave=0, subnet=0, finish=0.8,
                   macs_charged=100.0, macs_reused=0.0, macs_recomputed=0.0),
            _event(4, "finalize", 0.8, node="n0", request_id=1, status="completed",
                   reason=None, timed_out=False, queue_depth=0),
        ]
        [d] = decompose_latency(events)
        assert d.phases["compute"] == pytest.approx(0.3)
        assert d.phases["coalesce_wait"] == pytest.approx(0.2)
        assert d.phases["queue_wait"] == pytest.approx(0.3)
        assert d.phases["replay_recompute"] == 0.0
        assert d.phases["retry_backoff"] == 0.0
        assert d.phases["partition_hold"] == 0.0
        assert sum(d.phases.values()) == pytest.approx(d.residence)

    def test_replay_share_follows_mac_ratio(self):
        events = [
            _event(0, "arrive", 0.0, node="n0", request_id=1, arrival=0.0, deadline=None),
            _event(1, "enqueue", 0.0, node="n0", request_id=1, queue_depth=1),
            _event(2, "step", 0.0, node="n0", request_id=1, wave=0, subnet=0, finish=1.0,
                   macs_charged=100.0, macs_reused=0.0, macs_recomputed=25.0),
            _event(3, "finalize", 1.0, node="n0", request_id=1, status="completed",
                   reason=None, timed_out=False, queue_depth=0),
        ]
        [d] = decompose_latency(events)
        assert d.phases["replay_recompute"] == pytest.approx(0.25)
        assert d.phases["compute"] == pytest.approx(0.75)

    def test_retry_backoff_window(self):
        events = [
            _event(0, "arrive", 0.0, node="n0", request_id=7, arrival=0.0, deadline=None),
            _event(1, "enqueue", 0.0, node="n0", request_id=7, queue_depth=1),
            _event(2, "retry", 0.2, node="n0", request_id=7, attempt=1, retry_at=0.5),
            _event(3, "step", 0.5, node="n0", request_id=7, wave=0, subnet=0, finish=0.9,
                   macs_charged=10.0, macs_reused=0.0, macs_recomputed=0.0),
            _event(4, "finalize", 0.9, node="n0", request_id=7, status="completed",
                   reason=None, timed_out=False, queue_depth=0),
        ]
        [d] = decompose_latency(events)
        assert d.phases["retry_backoff"] == pytest.approx(0.3)
        assert d.phases["compute"] == pytest.approx(0.4)
        assert d.phases["queue_wait"] == pytest.approx(0.2)

    def test_late_admission_is_partition_hold(self):
        events = [
            _event(0, "arrive", 1.0, node="n0", request_id=2, arrival=0.0, deadline=None),
            _event(1, "enqueue", 1.0, node="n0", request_id=2, queue_depth=1),
            _event(2, "step", 1.0, node="n0", request_id=2, wave=0, subnet=0, finish=1.5,
                   macs_charged=10.0, macs_reused=0.0, macs_recomputed=0.0),
            _event(3, "finalize", 1.5, node="n0", request_id=2, status="completed",
                   reason=None, timed_out=False, queue_depth=0),
        ]
        [d] = decompose_latency(events)
        assert d.phases["partition_hold"] == pytest.approx(1.0)
        assert d.phases["compute"] == pytest.approx(0.5)

    def test_lost_request_is_pure_partition_hold(self):
        # Coordinator finalize with no arrive: the request never reached
        # any node; its whole residence is partition hold.
        events = [
            _event(0, "finalize", 0.4, request_id=9, status="lost",
                   reason="no serving node ever reachable", arrival=0.1),
        ]
        [d] = decompose_latency(events)
        assert d.status == "lost"
        assert d.phases["partition_hold"] == pytest.approx(0.3)
        assert sum(d.phases.values()) == pytest.approx(d.residence)

    def test_batch_members_share_interval_without_double_count(self):
        # Two catch-up steps of one request over the identical dispatch
        # interval: the union counts the span once.
        events = [
            _event(0, "arrive", 0.0, node="n0", request_id=1, arrival=0.0, deadline=None),
            _event(1, "enqueue", 0.0, node="n0", request_id=1, queue_depth=1),
            _event(2, "step", 0.0, node="n0", request_id=1, wave=0, subnet=0, finish=0.6,
                   macs_charged=50.0, macs_reused=0.0, macs_recomputed=0.0),
            _event(3, "step", 0.0, node="n0", request_id=1, wave=0, subnet=1, finish=0.6,
                   macs_charged=50.0, macs_reused=0.0, macs_recomputed=0.0),
            _event(4, "finalize", 0.6, node="n0", request_id=1, status="completed",
                   reason=None, timed_out=False, queue_depth=0),
        ]
        [d] = decompose_latency(events)
        assert d.phases["compute"] == pytest.approx(0.6)
        assert d.phases["queue_wait"] == pytest.approx(0.0)
        assert d.num_steps == 2

    def test_to_dict_is_json_clean(self):
        _, events = traced_run("cluster_faults.json")
        payload = [d.to_dict() for d in decompose_latency(events)]
        json.dumps(payload)
        assert all("intervals" not in entry for entry in payload)


# ----------------------------------------------------------------------
# Timelines and the critical path
# ----------------------------------------------------------------------
class TestUtilizationTimeline:
    def test_node_accounting_partitions_the_span(self):
        _, events = traced_run("cluster_faults.json")
        timeline = utilization_timeline(events)
        assert timeline["fleet"]["num_nodes"] >= 2
        for name, node in timeline["nodes"].items():
            parts = node["busy_seconds"] + node["idle_seconds"] + node["down_seconds"]
            assert parts == pytest.approx(node["span_seconds"], rel=1e-9, abs=1e-9), name
            assert 0.0 <= node["utilization"] <= 1.0
            assert node["starved_seconds"] <= node["idle_seconds"] + 1e-9

    def test_crash_without_recover_counts_down_to_span_end(self):
        events = [
            _event(0, "enqueue", 0.0, node="n0", request_id=1, queue_depth=1),
            _event(1, "step", 0.0, node="n0", request_id=1, wave=0, subnet=0, finish=0.5,
                   macs_charged=1.0, macs_reused=0.0, macs_recomputed=0.0),
            _event(2, "crash", 0.5, node="n0", unstarted=0, interrupted=0),
            _event(3, "finalize", 1.0, node="n0", request_id=1, status="lost",
                   reason="gone", timed_out=False, queue_depth=0),
        ]
        timeline = utilization_timeline(events)
        node = timeline["nodes"]["n0"]
        assert node["down_seconds"] == pytest.approx(0.5)
        assert node["busy_seconds"] == pytest.approx(0.5)
        assert node["idle_seconds"] == pytest.approx(0.0)


class TestCriticalPath:
    def test_segments_cover_the_whole_residence(self):
        _, events = traced_run("cluster_faults.json")
        path = critical_path(events)
        assert path["request_id"] is not None
        covered = sum(segment["duration"] for segment in path["segments"])
        assert covered == pytest.approx(path["residence"], rel=1e-9, abs=1e-9)
        starts = [segment["start"] for segment in path["segments"]]
        assert starts == sorted(starts)

    def test_p99_pick_is_a_tail_request(self):
        _, events = traced_run("cluster_faults.json")
        decompositions = decompose_latency(events)
        residences = sorted(d.residence for d in decompositions)
        path = critical_path(events, rank=99.0)
        # The chosen request sits in the top tail of the distribution.
        assert path["residence"] >= residences[int(0.9 * len(residences))]

    def test_explicit_request_and_unknown_request(self):
        _, events = traced_run("cluster_batched.json")
        some_id = decompose_latency(events)[0].request_id
        assert critical_path(events, request_id=some_id)["request_id"] == some_id
        with pytest.raises(KeyError):
            critical_path(events, request_id=10**9)

    def test_empty_trace(self):
        path = critical_path([])
        assert path["request_id"] is None
        assert path["segments"] == []


# ----------------------------------------------------------------------
# SLO specs and scorecards
# ----------------------------------------------------------------------
class TestSLOSpec:
    def test_round_trip(self):
        slo = SLOSpec(
            name="gold",
            max_p95_latency=0.1,
            min_deadline_hit_rate=0.9,
            max_loss_rate=0.05,
            min_delivered_levels=2.0,
        )
        recovered = SLOSpec.from_dict(json.loads(json.dumps(slo.to_dict())))
        assert recovered == slo

    def test_unconfigured_targets_are_omitted(self):
        assert SLOSpec(max_p99_latency=1.0).targets() == {"max_p99_latency": 1.0}

    def test_validation(self):
        with pytest.raises(ValueError, match="finite"):
            SLOSpec(max_p95_latency=-1.0)
        with pytest.raises(ValueError, match="finite"):
            SLOSpec(min_throughput_rps=float("inf"))
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            SLOSpec(min_deadline_hit_rate=1.5)
        with pytest.raises(ValueError, match="number"):
            SLOSpec(max_p50_latency="fast")
        with pytest.raises(ValueError, match="unknown"):
            SLOSpec.from_dict({"max_p42_latency": 1.0})

    def test_evaluate_against_report_object_and_mapping(self):
        report, events = traced_run("cluster_faults.json")
        slo = SLOSpec(max_p99_latency=10.0, min_deadline_hit_rate=0.01, max_loss_rate=0.99)
        for target in (report, report.as_dict()):
            card = slo.evaluate(target)
            assert isinstance(card, SLOScorecard)
            assert card.ok
            assert card.failed == []
            assert {row["objective"] for row in card.objectives} == set(slo.targets())
        with_events = evaluate_slo(slo, report, events=events)
        assert with_events.decomposition is not None
        assert with_events.decomposition["num_requests"] > 0

    def test_failing_objective_reports_negative_margin(self):
        report = {"num_jobs": 10, "completed": 10, "p95_latency": 0.5,
                  "deadline_miss_rate": 0.4, "throughput_rps": 100.0}
        card = evaluate_slo(SLOSpec(max_p95_latency=0.1, min_deadline_hit_rate=0.9), report)
        assert not card.ok
        assert set(card.failed) == {"max_p95_latency", "min_deadline_hit_rate"}
        by_name = {row["objective"]: row for row in card.objectives}
        assert by_name["max_p95_latency"]["margin"] == pytest.approx(-0.4)
        assert by_name["min_deadline_hit_rate"]["margin"] == pytest.approx(-0.3)

    def test_unmeasurable_objective_is_skipped_not_failed(self):
        card = evaluate_slo(SLOSpec(min_delivered_levels=2.0), {"num_jobs": 5})
        assert card.ok
        assert card.skipped == 1

    def test_scorecard_to_dict_is_strict_json(self):
        card = evaluate_slo(SLOSpec(max_p95_latency=1.0), {"num_jobs": 0, "p95_latency": float("nan")})
        text = json.dumps(card.to_dict(), allow_nan=False)
        assert "NaN" not in text


class TestClusterSpecCarriage:
    def test_slo_and_publish_interval_round_trip(self):
        spec = ClusterSpec.from_json(CONFIG_DIR / "cluster_sweep.json")
        assert isinstance(spec.slo, SLOSpec)
        payload = json.loads(json.dumps(spec.to_dict()))
        recovered = ClusterSpec.from_dict(payload)
        assert recovered.slo == spec.slo
        assert recovered.publish_interval == spec.publish_interval
        assert recovered.to_dict() == spec.to_dict()

    def test_slo_dict_is_coerced(self):
        base = ClusterSpec.from_json(CONFIG_DIR / "cluster_sweep.json")
        data = base.to_dict()
        data["slo"] = {"max_p99_latency": 0.5}
        assert ClusterSpec.from_dict(data).slo == SLOSpec(max_p99_latency=0.5)

    def test_invalid_publish_interval_rejected(self):
        base = ClusterSpec.from_json(CONFIG_DIR / "cluster_sweep.json")
        data = base.to_dict()
        for bad in (-0.1, float("nan"), "soon", True):
            data["publish_interval"] = bad
            with pytest.raises(ConfigError, match="publish_interval"):
                ClusterSpec.from_dict(data)

    def test_invalid_slo_rejected_as_config_error(self):
        base = ClusterSpec.from_json(CONFIG_DIR / "cluster_sweep.json")
        data = base.to_dict()
        data["slo"] = {"max_p95_latency": -1.0}
        with pytest.raises(ConfigError):
            ClusterSpec.from_dict(data)
