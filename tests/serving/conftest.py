"""Serving-test fixtures.

Like the runtime tests, the serving tests need genuinely distinct subnet
sizes (the engine schedules and charges per-level deltas), so the
freshly initialised network is given calibrated nested prefix
assignments without running the slow construction flow.
"""

import numpy as np
import pytest

from repro.baselines.common import set_prefix_assignments
from repro.core import SteppingNetwork


@pytest.fixture
def stepping_network(tiny_spec, rng):
    network = SteppingNetwork(tiny_spec.expand(1.5), num_subnets=4, rng=rng)
    set_prefix_assignments(network, [0.25, 0.5, 0.75, 1.0])
    network.assignment.validate()
    return network


@pytest.fixture
def sample_pool(image_dataset):
    images = np.stack([image_dataset[i][0] for i in range(16)])
    labels = np.array([image_dataset[i][1] for i in range(16)])
    return images, labels
