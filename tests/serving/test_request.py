"""Tests for requests and request-stream generators."""

import numpy as np
import pytest

from repro.serving.request import (
    Request,
    bursty_stream,
    periodic_stream,
    poisson_stream,
    trace_replay_stream,
)


@pytest.fixture
def images():
    return np.zeros((10, 3, 4, 4))


@pytest.fixture
def labels():
    return np.arange(10)


class TestRequest:
    def test_deadline_must_follow_arrival(self):
        with pytest.raises(ValueError):
            Request(request_id=0, arrival_time=1.0, inputs=np.zeros((1, 3, 4, 4)), deadline=1.0)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            Request(request_id=0, arrival_time=-0.5, inputs=np.zeros((1, 3, 4, 4)))

    def test_relative_deadline(self):
        request = Request(request_id=0, arrival_time=2.0, inputs=np.zeros((1, 3, 4, 4)), deadline=3.5)
        assert request.relative_deadline == pytest.approx(1.5)

    def test_best_effort_relative_deadline_is_inf(self):
        request = Request(request_id=0, arrival_time=2.0, inputs=np.zeros((1, 3, 4, 4)))
        assert np.isinf(request.relative_deadline)


class TestPoissonStream:
    def test_count_and_sorted_arrivals(self, images, labels):
        requests = poisson_stream(images, labels, rate=5.0, num_requests=40, seed=0)
        assert len(requests) == 40
        arrivals = [r.arrival_time for r in requests]
        assert arrivals == sorted(arrivals)

    def test_mean_rate_roughly_respected(self, images):
        requests = poisson_stream(images, rate=10.0, num_requests=500, seed=0)
        span = requests[-1].arrival_time - requests[0].arrival_time
        assert 500 / span == pytest.approx(10.0, rel=0.25)

    def test_seed_reproducible(self, images):
        a = poisson_stream(images, rate=2.0, num_requests=10, seed=3)
        b = poisson_stream(images, rate=2.0, num_requests=10, seed=3)
        assert [r.arrival_time for r in a] == [r.arrival_time for r in b]

    def test_deadlines_relative_to_arrival(self, images):
        requests = poisson_stream(images, rate=2.0, num_requests=10, relative_deadline=0.5, seed=0)
        for request in requests:
            assert request.deadline == pytest.approx(request.arrival_time + 0.5)

    def test_labels_cycled_with_inputs(self, images, labels):
        requests = poisson_stream(images, labels, rate=2.0, num_requests=12, batch_size=3, seed=0)
        for request in requests:
            assert request.labels is not None
            assert len(request.labels) == len(request.inputs) == 3

    def test_priority_levels(self, images):
        requests = poisson_stream(
            images, rate=2.0, num_requests=50, priority_levels=3, seed=0
        )
        priorities = {r.priority for r in requests}
        assert priorities <= {0, 1, 2}
        assert len(priorities) > 1

    @pytest.mark.parametrize(
        "kwargs",
        [{"rate": 0.0}, {"num_requests": 0}, {"batch_size": 0}, {"priority_levels": 0}],
    )
    def test_invalid_arguments(self, images, kwargs):
        defaults = {"rate": 1.0, "num_requests": 5, "batch_size": 1, "priority_levels": 1}
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            poisson_stream(images, **defaults)


class TestBurstyStream:
    def test_burst_structure(self, images):
        requests = bursty_stream(
            images, num_bursts=4, burst_size=5, mean_gap=10.0, seed=0
        )
        assert len(requests) == 20
        arrivals = np.array([r.arrival_time for r in requests])
        # Members of one burst arrive simultaneously by default.
        for burst in range(4):
            member_arrivals = arrivals[burst * 5 : (burst + 1) * 5]
            assert np.allclose(member_arrivals, member_arrivals[0])

    def test_intra_burst_gap(self, images):
        requests = bursty_stream(
            images, num_bursts=1, burst_size=3, mean_gap=1.0, intra_burst_gap=0.1, seed=0
        )
        arrivals = [r.arrival_time for r in requests]
        assert arrivals[1] - arrivals[0] == pytest.approx(0.1)
        assert arrivals[2] - arrivals[1] == pytest.approx(0.1)


class TestPeriodicStream:
    def test_fixed_period(self, images):
        requests = periodic_stream(images, period=0.25, num_requests=5)
        arrivals = [r.arrival_time for r in requests]
        assert arrivals == pytest.approx([0.0, 0.25, 0.5, 0.75, 1.0])


class TestTraceReplayStream:
    def test_replay_sorts_timestamps(self, images):
        requests = trace_replay_stream([0.5, 0.1, 0.9], images)
        assert [r.arrival_time for r in requests] == [0.1, 0.5, 0.9]
        assert [r.request_id for r in requests] == [0, 1, 2]

    def test_empty_rejected(self, images):
        with pytest.raises(ValueError):
            trace_replay_stream([], images)

    def test_negative_rejected(self, images):
        with pytest.raises(ValueError):
            trace_replay_stream([-1.0, 0.5], images)
