"""Tests for continuous batching and the cost-signal-aware schedulers.

Continuous batching's contract: an under-full *started* dispatch is
topped back up with ready jobs from lower subnet edges — each laggard
catches up inside the dispatch (its own policy consulted between
levels) and rides the shared pass — while per-request logits stay
bit-equal to unbatched serving.  ``batch_policy="none"`` remains the
correctness oracle, as for every other coalescing policy.

Also covered here: the batched recompute baseline (same shared-pass
mechanics, honest full-subnet charging), the three schedulers that read
serving cost signals (batch potential, pending recompute, utility per
MAC), and the per-edge ready index's purge guarantees under expiry.
"""

import numpy as np
import pytest

from repro.runtime.platform import ResourceTrace
from repro.runtime.policies import ConfidencePolicy
from repro.serving import (
    BATCH_POLICIES,
    BatchAwareScheduler,
    BatchedRecomputeBackend,
    BatchedSteppingBackend,
    ContinuousBatching,
    LeastRecomputeScheduler,
    NoBatching,
    RecomputeBackend,
    Request,
    SameLevelBatching,
    ServingEngine,
    SteppingBackend,
    UtilityPerMacScheduler,
    WindowedBatching,
    get_batch_policy,
    get_scheduler,
    poisson_stream,
)
from repro.serving.backend import ServingJob


def _calibrated_trace(network, seconds_for_largest=0.4):
    largest = float(network.subnet_macs(network.num_subnets - 1))
    return ResourceTrace.constant(largest / seconds_for_largest, name="calibrated")


def _serve(network, requests, *, policy="continuous", scheduler="fifo",
           backend=None, trace=None, max_batch_size=16, **engine_kwargs):
    if backend is None:
        backend = (
            SteppingBackend(network)
            if policy in (None, "none")
            else BatchedSteppingBackend(network)
        )
    batch_policy = (
        policy
        if policy in (None, "none")
        else get_batch_policy(policy, max_batch_size=max_batch_size)
    )
    engine = ServingEngine(
        backend,
        trace or _calibrated_trace(network),
        scheduler,
        batch_policy=batch_policy,
        **engine_kwargs,
    )
    return engine.serve(requests)


def _assert_bit_equal(reference, report):
    assert len(reference.jobs) == len(report.jobs)
    for a, b in zip(reference.jobs, report.jobs):
        assert b.request.request_id == a.request.request_id
        assert [s.subnet for s in b.steps] == [s.subnet for s in a.steps]
        assert np.array_equal(b.final_logits, a.final_logits)


# ----------------------------------------------------------------------
# Policy registry
# ----------------------------------------------------------------------
class TestContinuousPolicy:
    def test_registry(self):
        assert "continuous" in BATCH_POLICIES
        policy = get_batch_policy("continuous", max_batch_size=16)
        assert isinstance(policy, ContinuousBatching)
        assert policy.max_batch_size == 16
        assert policy.coalesces
        assert policy.refills

    def test_only_continuous_refills(self):
        assert not NoBatching.refills
        assert not SameLevelBatching.refills
        assert not WindowedBatching.refills
        assert ContinuousBatching.refills

    def test_requires_batched_backend(self, stepping_network):
        with pytest.raises(ValueError, match="batching-capable"):
            ServingEngine(
                SteppingBackend(stepping_network),
                _calibrated_trace(stepping_network),
                batch_policy="continuous",
            )


# ----------------------------------------------------------------------
# Mid-wave join: the tentpole mechanic, at every step boundary
# ----------------------------------------------------------------------
class TestMidWaveJoin:
    def _wave_requests(self, images, count=3):
        return [
            Request(request_id=i, arrival_time=0.0, inputs=images[i : i + 1])
            for i in range(count)
        ]

    def _wave_finish_times(self, network, images):
        """Dispatch finish times of the 3-job wave served alone."""
        report = _serve(network, self._wave_requests(images))
        assert report.batch_sizes == [3] * network.num_subnets
        return [step.finish_time for step in report.jobs[0].steps]

    @pytest.mark.parametrize("join_level", [1, 2, 3])
    def test_late_arrival_joins_at_every_boundary(
        self, stepping_network, sample_pool, join_level
    ):
        """A request arriving mid-wave catches up and joins the shared pass.

        Arriving during dispatch ``join_level`` means admission at that
        dispatch's finish boundary, where the wave sits at edge
        ``(join_level - 1, join_level)``: the laggard replays levels
        ``0..join_level-1`` inside the next dispatch and shares the
        ``join_level`` pass — all in one dispatch, one launch overhead.
        """
        images, _ = sample_pool
        finishes = self._wave_finish_times(stepping_network, images)
        arrival = (
            finishes[join_level - 1] / 2
            if join_level == 1
            else (finishes[join_level - 2] + finishes[join_level - 1]) / 2
        )
        late = Request(request_id=9, arrival_time=arrival, inputs=images[9:10])
        requests = self._wave_requests(images) + [late]
        report = _serve(stepping_network, requests)

        num_subnets = stepping_network.num_subnets
        # The join dispatch records the laggard's catch-up passes (one
        # per level, solo — there is only one laggard) and then the
        # topped-up shared pass (3 wave + 1 laggard).
        assert report.batch_sizes == (
            [3] * join_level
            + [1] * join_level
            + [4] * (num_subnets - join_level)
        )
        late_record = report.jobs[-1]
        assert late_record.request.request_id == 9
        assert len(late_record.steps) == num_subnets
        join_start = finishes[join_level - 1]
        for step in late_record.steps[: join_level + 1]:
            assert step.start_time == join_start
            assert step.finish_time == late_record.steps[0].finish_time
        # From the join on, the laggard rides the wave in lockstep.
        wave_record = report.jobs[0]
        for index in range(join_level, num_subnets):
            assert (
                late_record.steps[index].finish_time
                == wave_record.steps[index].finish_time
            )
        # And the results are still exactly the unbatched ones.
        _assert_bit_equal(_serve(stepping_network, requests, policy="none"), report)

    def test_join_amortises_overhead_and_lifts_occupancy(
        self, stepping_network, sample_pool
    ):
        """vs windowed: the laggard costs no extra dispatch at all."""
        images, _ = sample_pool
        finishes = self._wave_finish_times(stepping_network, images)
        late = Request(
            request_id=9,
            arrival_time=(finishes[0] + finishes[1]) / 2,
            inputs=images[9:10],
        )
        requests = self._wave_requests(images) + [late]
        windowed = _serve(stepping_network, requests, policy="windowed",
                          overhead_per_step=1e-3)
        continuous = _serve(stepping_network, requests, overhead_per_step=1e-3)
        assert continuous.num_dispatches < windowed.num_dispatches
        assert continuous.mean_batch_occupancy > windowed.mean_batch_occupancy
        assert continuous.makespan < windowed.makespan


# ----------------------------------------------------------------------
# Bit-equality against the unbatched oracle, under wave drain
# ----------------------------------------------------------------------
class TestContinuousBitEquality:
    """Whole oversubscribed streams, early-stopping policy → waves drain
    and refills actually fire; logits and level sequences must match
    ``batch_policy="none"`` exactly.

    The stopping policy reads only logits (``respect_deadline=False``,
    deadlines not enforced), so the per-request level sequence is
    timing-independent — which is precisely why batching policies can
    reorder work without changing any request's outcome.
    """

    def _stream(self, rng, count=24, mean_gap=0.18):
        requests = []
        arrival = 0.0
        for index in range(count):
            arrival += float(rng.exponential(mean_gap))
            requests.append(
                Request(
                    request_id=index,
                    arrival_time=round(arrival, 6),
                    inputs=rng.standard_normal((1, 3, 12, 12)),
                    deadline=round(arrival + float(rng.uniform(0.5, 3.0)), 6),
                    priority=int(rng.integers(0, 3)),
                )
            )
        return requests

    @pytest.mark.parametrize("scheduler", ["fifo", "edf", "priority"])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_stream_bit_equal_to_none(self, stepping_network, scheduler, dtype):
        requests = self._stream(np.random.default_rng(7))
        policy = ConfidencePolicy(threshold=0.35, respect_deadline=False)
        trace = _calibrated_trace(stepping_network)
        oracle = _serve(
            stepping_network, requests, policy="none", scheduler=scheduler,
            backend=SteppingBackend(stepping_network, policy=policy, dtype=dtype),
            trace=trace, enforce_deadline=False,
        )
        report = _serve(
            stepping_network, requests, scheduler=scheduler,
            backend=BatchedSteppingBackend(stepping_network, policy=policy, dtype=dtype),
            trace=trace, enforce_deadline=False,
        )
        _assert_bit_equal(oracle, report)
        # The workload genuinely drains waves (varied stop levels) ...
        stop_levels = {job.final_subnet for job in oracle.jobs}
        assert len(stop_levels) > 1
        # ... and refills genuinely fire: some job ran 2+ levels in one
        # dispatch (identical step span), which only mid-wave joins do.
        assert any(
            len(job.steps) >= 2
            and job.steps[0].finish_time == job.steps[1].finish_time
            for job in report.jobs
        )
        assert report.mean_batch_occupancy > 1.0

    def test_continuous_occupancy_beats_windowed(self, stepping_network):
        requests = self._stream(np.random.default_rng(11), count=32, mean_gap=0.04)
        policy = ConfidencePolicy(threshold=0.35, respect_deadline=False)
        trace = _calibrated_trace(stepping_network)

        def run(name):
            return _serve(
                stepping_network, requests,
                policy=name,
                backend=BatchedSteppingBackend(stepping_network, policy=policy),
                trace=trace, enforce_deadline=False, overhead_per_step=5e-4,
            )

        windowed = run("windowed")
        continuous = run("continuous")
        assert continuous.mean_batch_occupancy > windowed.mean_batch_occupancy
        assert continuous.num_dispatches < windowed.num_dispatches


# ----------------------------------------------------------------------
# Laggard semantics: policy stops mid catch-up, deadline guard
# ----------------------------------------------------------------------
class TestLaggardSemantics:
    def test_laggard_policy_stop_mid_catch_up(self, stepping_network, rng):
        """A laggard is never refined past its policy just to fill a batch.

        A large-magnitude input yields peaked logits — confident after
        level 0 — while near-zero inputs stay diffuse at every level.
        With the threshold between the two, the wave never stops but the
        late request is done the moment its mandatory first level runs:
        catching up at a ``(1, 2)``-edge boundary, it executes level 0
        inside the dispatch, its policy says stop, and it completes
        without ever joining the shared pass — and without a dispatch of
        its own.
        """
        loud = rng.standard_normal((1, 3, 12, 12)) * 50.0
        quiet = [rng.standard_normal((1, 3, 12, 12)) * 1e-3 for _ in range(3)]
        policy = ConfidencePolicy(threshold=0.9, respect_deadline=False)
        trace = _calibrated_trace(stepping_network)
        wave = [
            Request(request_id=i, arrival_time=0.0, inputs=inputs)
            for i, inputs in enumerate(quiet)
        ]
        probe = _serve(
            stepping_network, wave,
            backend=BatchedSteppingBackend(stepping_network, policy=policy),
            trace=trace,
        )
        finishes = [step.finish_time for step in probe.jobs[0].steps]
        assert len(finishes) == stepping_network.num_subnets  # wave never stops

        late = Request(
            request_id=9,
            arrival_time=(finishes[0] + finishes[1]) / 2,
            inputs=loud,
        )
        report = _serve(
            stepping_network, wave + [late],
            backend=BatchedSteppingBackend(stepping_network, policy=policy),
            trace=trace,
        )
        late_record = report.jobs[-1]
        assert late_record.status == "completed"
        assert len(late_record.steps) == 1
        assert late_record.final_subnet == 0
        # Its only level ran inside the wave's third dispatch: same start
        # boundary, one catch-up pass, and it never joined the shared
        # pass (the wave's passes stay at 3 members throughout).
        assert late_record.steps[0].start_time == finishes[1]
        assert report.batch_sizes == [3, 3, 1, 3, 3]
        _assert_bit_equal(
            _serve(
                stepping_network, wave + [late], policy="none",
                backend=SteppingBackend(stepping_network, policy=policy),
                trace=trace,
            ),
            report,
        )

    def test_refill_never_blows_a_member_deadline(
        self, stepping_network, sample_pool
    ):
        """Catch-up work rides the member's dispatch; the guard must
        reject a laggard whose extra MACs would push the dispatch past a
        member's deadline.

        The tight request's deadline sits just past its solo level-1
        finish: alone it reaches level 1 exactly, and a laggard joining
        that dispatch (its catch-up MACs stretch the very same dispatch)
        would overshoot it.  With the guard, the tight job's entire
        schedule is byte-identical to running alone — zero interference.
        """
        images, _ = sample_pool
        trace = _calibrated_trace(stepping_network)
        solo = _serve(
            stepping_network,
            [Request(request_id=0, arrival_time=0.0, inputs=images[:1])],
            trace=trace,
        )
        boundaries = [step.finish_time for step in solo.jobs[0].steps]
        tight = Request(
            request_id=0, arrival_time=0.0, inputs=images[:1],
            deadline=boundaries[1] * 1.0001,
        )
        late = Request(
            request_id=1, arrival_time=boundaries[0] / 2, inputs=images[1:2]
        )
        alone = _serve(stepping_network, [tight], trace=trace)
        report = _serve(stepping_network, [tight, late], trace=trace)
        tight_record, late_record = report.jobs
        # Feasible alone and kept feasible: the laggard was turned away,
        # and the tight job's steps are exactly its run-alone steps.
        assert tight_record.status == "completed"
        assert tight_record.deadline_met
        assert report.batch_sizes == [1] * report.num_dispatches
        reference = alone.jobs[0]
        assert [s.subnet for s in tight_record.steps] == [
            s.subnet for s in reference.steps
        ]
        assert [s.finish_time for s in tight_record.steps] == [
            s.finish_time for s in reference.steps
        ]
        # The rejected laggard still completes, strictly afterwards.
        assert late_record.status == "completed"
        assert late_record.steps[0].start_time >= tight_record.steps[-1].finish_time


# ----------------------------------------------------------------------
# Batched recompute baseline
# ----------------------------------------------------------------------
class TestBatchedRecompute:
    def test_registry(self):
        from repro.serving import BACKENDS

        assert BACKENDS["batched-recompute"] is BatchedRecomputeBackend
        assert BatchedRecomputeBackend.supports_batching

    @pytest.mark.parametrize("group_size", [2, 4])
    def test_group_advance_bit_equal_and_fully_charged(
        self, stepping_network, rng, group_size
    ):
        inputs = [rng.standard_normal((1, 3, 12, 12)) for _ in range(group_size)]
        solo_backend = RecomputeBackend(stepping_network)
        group_backend = BatchedRecomputeBackend(stepping_network)
        assert not group_backend.reuses_activations
        solo = [solo_backend.open(batch) for batch in inputs]
        grouped = [group_backend.open(batch) for batch in inputs]
        for level in range(stepping_network.num_subnets):
            references = [session.advance() for session in solo]
            outcomes = group_backend.advance_group(grouped)
            full = float(stepping_network.subnet_macs(level))
            for reference, outcome in zip(references, outcomes):
                assert np.array_equal(outcome.logits, reference.logits)
                # Recompute semantics survive batching: every step pays
                # the full subnet, nothing is reused.
                assert outcome.macs_charged == reference.macs_charged
                assert outcome.macs_charged == pytest.approx(full)
                assert outcome.macs_reused == 0

    def test_continuous_serving_on_recompute_baseline(
        self, stepping_network, sample_pool
    ):
        images, _ = sample_pool
        requests = poisson_stream(
            images, rate=40.0, num_requests=16, batch_size=1, seed=3
        )
        trace = _calibrated_trace(stepping_network)
        oracle = _serve(
            stepping_network, requests, policy="none",
            backend=RecomputeBackend(stepping_network), trace=trace,
        )
        report = _serve(
            stepping_network, requests,
            backend=BatchedRecomputeBackend(stepping_network), trace=trace,
        )
        _assert_bit_equal(oracle, report)
        # The baseline gap batching must not hide: recompute charges
        # strictly more MACs than stepping for the same workload.
        stepping = _serve(stepping_network, requests, trace=trace)
        assert report.total_macs > stepping.total_macs


# ----------------------------------------------------------------------
# Cost-signal-aware schedulers
# ----------------------------------------------------------------------
class _StubSession:
    """Just enough session surface for scheduler-key unit tests."""

    def __init__(self, current=-1, next_subnet=0, recompute=0.0, step_macs=1.0):
        self.current_subnet = current
        self._next = next_subnet
        self._recompute = recompute
        self._macs = step_macs

    def next_subnet(self):
        return self._next

    def pending_recompute_macs(self):
        return self._recompute

    def next_step_macs(self):
        return self._macs


def _job(request_id, arrival, deadline=None, priority=0, session=None, steps=0):
    request = Request(
        request_id=request_id,
        arrival_time=arrival,
        inputs=np.zeros((1, 3, 12, 12)),
        deadline=deadline,
        priority=priority,
    )
    return ServingJob(request=request, session=session, steps_executed=steps)


def _started(request_id, arrival, level, **kwargs):
    session = _StubSession(current=level, next_subnet=level + 1)
    return _job(request_id, arrival, session=session, steps=level + 1, **kwargs)


class TestBatchAwareScheduler:
    def test_serves_fullest_edge(self):
        scheduler = BatchAwareScheduler()
        lone = _job(0, 0.0)  # entry edge, earliest arrival
        wave = [_started(1, 1.0, level=1), _started(2, 2.0, level=1)]
        for job in [lone, *wave]:
            scheduler.add(job)
        picked = scheduler.pick(now=0.0)
        assert picked is wave[0]  # head of the 2-deep (1, 2) edge
        assert scheduler.select([lone, *wave], now=0.0) is picked

    def test_urgency_overrides_batch_potential(self):
        scheduler = BatchAwareScheduler(min_slack=1.0)
        urgent = _job(0, 0.0, deadline=5.0)  # slack 0.5 <= min_slack at now=4.5
        wave = [_started(1, 1.0, level=1), _started(2, 2.0, level=1)]
        for job in [urgent, *wave]:
            scheduler.add(job)
        assert scheduler.pick(now=4.5) is urgent
        assert scheduler.select([urgent, *wave], now=4.5) is urgent
        # With plenty of slack the wave wins again.
        assert scheduler.pick(now=0.0) is wave[0]

    def test_params_validated_and_cloned(self):
        scheduler = get_scheduler("batch-aware", min_slack=0.5)
        assert isinstance(scheduler, BatchAwareScheduler)
        assert scheduler.clone().min_slack == 0.5
        with pytest.raises(ValueError, match="min_slack"):
            BatchAwareScheduler(min_slack=-1.0)
        with pytest.raises(TypeError):
            get_scheduler("fifo", min_slack=0.5)

    def test_end_to_end_prefers_joinable_work(self, stepping_network, sample_pool):
        images, _ = sample_pool
        requests = poisson_stream(
            images, rate=60.0, num_requests=16, batch_size=1, seed=5
        )
        report = _serve(
            stepping_network, requests, scheduler=get_scheduler("batch-aware")
        )
        assert len(report.completed_jobs) == 16
        assert report.scheduler_name == "batch-aware"


class TestLeastRecomputeScheduler:
    def test_cold_job_waits_for_warm_work(self):
        scheduler = LeastRecomputeScheduler()
        cold = _job(
            0, 0.0, session=_StubSession(current=1, next_subnet=2, recompute=500.0),
            steps=2,
        )
        warm = _job(1, 5.0, session=_StubSession(current=1, next_subnet=2))
        scheduler.add(cold)
        scheduler.add(warm)
        assert scheduler.pick(now=0.0) is warm
        assert scheduler.select([cold, warm], now=0.0) is warm
        # Eviction hits the warm job too: FIFO (arrival) breaks the tie.
        warm.session._recompute = 500.0
        scheduler.reindex(warm)
        assert scheduler.pick(now=0.0) is cold

    def test_end_to_end_under_memory_pressure(self, stepping_network, sample_pool):
        images, _ = sample_pool
        requests = poisson_stream(
            images, rate=60.0, num_requests=16, batch_size=1, seed=5
        )
        report = _serve(
            stepping_network, requests, scheduler=get_scheduler("least-recompute"),
            memory_budget_bytes=60_000,
        )
        assert len(report.completed_jobs) == 16
        oracle = _serve(
            stepping_network, requests, policy="none",
            scheduler=get_scheduler("least-recompute"),
            memory_budget_bytes=60_000,
        )
        _assert_bit_equal(oracle, report)


class TestUtilityPerMacScheduler:
    def test_first_results_beat_refinements(self):
        scheduler = UtilityPerMacScheduler()
        fresh = _job(0, 5.0, session=_StubSession(step_macs=100.0))
        deep = _job(
            1, 0.0, session=_StubSession(current=2, next_subnet=3, step_macs=100.0),
            steps=3,
        )
        scheduler.add(fresh)
        scheduler.add(deep)
        # utility/MAC: fresh = 1/100 beats deep = (1/4)/100.
        assert scheduler.pick(now=0.0) is fresh
        assert scheduler.select([fresh, deep], now=0.0) is fresh

    def test_cheap_step_beats_expensive_step(self):
        scheduler = UtilityPerMacScheduler()
        cheap = _job(0, 5.0, session=_StubSession(step_macs=10.0))
        costly = _job(1, 0.0, session=_StubSession(step_macs=1000.0))
        scheduler.add(cheap)
        scheduler.add(costly)
        assert scheduler.pick(now=0.0) is cheap

    def test_end_to_end_completes_everything(self, stepping_network, sample_pool):
        images, _ = sample_pool
        requests = poisson_stream(
            images, rate=60.0, num_requests=16, batch_size=1, seed=5
        )
        report = _serve(
            stepping_network, requests, scheduler=get_scheduler("utility-per-mac")
        )
        assert len(report.completed_jobs) == 16


# ----------------------------------------------------------------------
# Per-edge index: purge guarantees under expiry and finalisation
# ----------------------------------------------------------------------
class TestEdgeIndexPurge:
    def test_discard_purges_counts_and_lookups(self):
        scheduler = get_scheduler("edf")
        jobs = [_job(i, float(i), deadline=10.0 + i) for i in range(3)]
        for job in jobs:
            scheduler.add(job)
        entry = (-1, 0)
        assert scheduler.count_at_edge(entry) == 3
        # Expiry-heap style discard: never picked, dropped directly.
        scheduler.discard(jobs[1])
        assert scheduler.count_at_edge(entry) == 2
        remaining = scheduler.jobs_at_edge(entry)
        assert [job.request.request_id for job in remaining] == [0, 2]
        assert remaining[0] is jobs[0] and remaining[1] is jobs[2]
        scheduler.discard(jobs[0])
        scheduler.discard(jobs[2])
        assert scheduler.edges() == []
        assert scheduler.count_at_edge(entry) == 0
        assert scheduler.jobs_at_edge(entry) == []

    def test_reindex_moves_job_between_edges(self):
        scheduler = get_scheduler("fifo")
        job = _job(0, 0.0, session=_StubSession())
        scheduler.add(job)
        assert scheduler.count_at_edge((-1, 0)) == 1
        # The job executes level 0: its edge moves to (0, 1).
        job.session.current_subnet = 0
        job.session._next = 1
        job.steps_executed = 1
        scheduler.reindex(job)
        assert scheduler.count_at_edge((-1, 0)) == 0
        assert (-1, 0) not in scheduler.edges()
        assert scheduler.count_at_edge((0, 1)) == 1
        assert scheduler.jobs_at_edge((0, 1)) == [job]
        assert scheduler.pick(now=0.0) is job

    def test_drop_expired_leaves_no_stale_index_state(
        self, stepping_network, sample_pool
    ):
        """After expiry drops, the dropped jobs are gone from every edge."""
        images, _ = sample_pool
        trace = _calibrated_trace(stepping_network)
        requests = [
            # One long-running head-of-line job ...
            Request(request_id=0, arrival_time=0.0, inputs=images[:1]),
            # ... and two that expire while queued behind it.
            Request(request_id=1, arrival_time=0.0, inputs=images[1:2], deadline=0.01),
            Request(request_id=2, arrival_time=0.0, inputs=images[2:3], deadline=0.01),
            Request(request_id=3, arrival_time=0.5, inputs=images[3:4]),
        ]
        engine = ServingEngine(
            BatchedSteppingBackend(stepping_network),
            trace,
            "fifo",
            batch_policy=get_batch_policy("continuous", max_batch_size=1),
            drop_expired=True,
        )
        run = engine.open_run()
        for request in requests:
            run.push(request)
        report = run.finish()
        assert {job.status for job in report.jobs if job.request.deadline} == {"dropped"}
        assert len(report.completed_jobs) == 2
        # The run's queue is fully drained: no edge still counts a job.
        assert len(run.scheduler) == 0
        assert run.scheduler.edges() == []
        assert run.scheduler.count_at_edge((-1, 0)) == 0

    def test_entry_edge_depth_tracks_unstarted_jobs(
        self, stepping_network, sample_pool
    ):
        images, _ = sample_pool
        engine = ServingEngine(
            SteppingBackend(stepping_network),
            _calibrated_trace(stepping_network, seconds_for_largest=1.0),
        )
        run = engine.open_run()
        assert run.entry_edge_depth == 0
        for i in range(3):
            run.push(Request(request_id=i, arrival_time=0.0, inputs=images[i : i + 1]))
        run.run_until(0.0)
        # One job started its first level; two still sit at the entry edge.
        assert run.entry_edge_depth == 2
        run.finish()
        assert run.entry_edge_depth == 0
