"""Tests for the execution backends and their preemptible sessions."""

import numpy as np
import pytest

from repro.serving.backend import (
    DEFAULT_SERVING_DTYPE,
    RecomputeBackend,
    SteppingBackend,
)


@pytest.fixture
def inputs(image_batch):
    images, _ = image_batch
    return images[:4]


class TestSteppingBackend:
    def test_step_costs_are_deltas(self, stepping_network):
        backend = SteppingBackend(stepping_network)
        for level in range(1, stepping_network.num_subnets):
            expected = stepping_network.subnet_macs(level) - stepping_network.subnet_macs(level - 1)
            assert backend.step_cost(level - 1, level) == pytest.approx(expected)

    def test_first_step_cost_is_full_subnet(self, stepping_network):
        backend = SteppingBackend(stepping_network)
        assert backend.step_cost(-1, 0) == pytest.approx(stepping_network.subnet_macs(0))

    def test_session_walks_all_levels(self, stepping_network, inputs):
        backend = SteppingBackend(stepping_network)
        session = backend.open(inputs)
        seen = []
        while session.next_subnet() is not None:
            outcome = session.advance()
            seen.append(outcome.subnet)
        assert seen == list(range(stepping_network.num_subnets))
        assert session.next_step_macs() is None

    def test_advance_past_end_raises(self, stepping_network, inputs):
        backend = SteppingBackend(stepping_network)
        session = backend.open(inputs)
        while session.next_subnet() is not None:
            session.advance()
        with pytest.raises(RuntimeError):
            session.advance()

    def test_start_subnet_out_of_range(self, stepping_network, inputs):
        backend = SteppingBackend(stepping_network)
        with pytest.raises(IndexError):
            backend.open(inputs, start_subnet=stepping_network.num_subnets)

    def test_default_dtype_is_float32(self, stepping_network, inputs):
        backend = SteppingBackend(stepping_network)
        assert backend.dtype == DEFAULT_SERVING_DTYPE
        session = backend.open(inputs)
        outcome = session.advance()
        assert outcome.logits.dtype == np.float32

    def test_float32_close_to_float64(self, stepping_network, inputs):
        fast = SteppingBackend(stepping_network, dtype=np.float32)
        exact = SteppingBackend(stepping_network, dtype=np.float64)
        fast_session, exact_session = fast.open(inputs), exact.open(inputs)
        while fast_session.next_subnet() is not None:
            a = fast_session.advance()
            b = exact_session.advance()
            np.testing.assert_allclose(a.logits, b.logits, rtol=1e-4, atol=1e-4)


class TestRecomputeBackend:
    def test_step_costs_are_full_subnets(self, stepping_network):
        backend = RecomputeBackend(stepping_network)
        for level in range(stepping_network.num_subnets):
            assert backend.step_cost(level - 1, level) == pytest.approx(
                stepping_network.subnet_macs(level)
            )

    def test_no_reuse_reported(self, stepping_network, inputs):
        backend = RecomputeBackend(stepping_network)
        session = backend.open(inputs)
        while session.next_subnet() is not None:
            outcome = session.advance()
            assert outcome.macs_reused == 0.0

    def test_logits_match_stepping_backend(self, stepping_network, inputs):
        stepping = SteppingBackend(stepping_network).open(inputs)
        recompute = RecomputeBackend(stepping_network).open(inputs)
        while stepping.next_subnet() is not None:
            a = stepping.advance()
            b = recompute.advance()
            np.testing.assert_allclose(a.logits, b.logits, rtol=1e-5)


class TestSessionPreemption:
    """Interleaved sessions on one shared engine must not corrupt state."""

    def test_interleaved_sessions_match_solo_sessions(self, stepping_network, image_batch):
        images, _ = image_batch
        batch_a, batch_b = images[:3], images[3:6]
        backend = SteppingBackend(stepping_network, dtype=np.float64)

        # Reference: run each batch alone through a fresh backend.
        solo = SteppingBackend(stepping_network, dtype=np.float64)
        ref_a, ref_b = [], []
        session = solo.open(batch_a)
        while session.next_subnet() is not None:
            ref_a.append(session.advance().logits)
        session = solo.open(batch_b)
        while session.next_subnet() is not None:
            ref_b.append(session.advance().logits)

        # Interleave two sessions step by step on one shared engine.
        session_a, session_b = backend.open(batch_a), backend.open(batch_b)
        got_a, got_b = [], []
        while session_a.next_subnet() is not None or session_b.next_subnet() is not None:
            if session_a.next_subnet() is not None:
                got_a.append(session_a.advance().logits)
            if session_b.next_subnet() is not None:
                got_b.append(session_b.advance().logits)

        for ref, got in zip(ref_a, got_a):
            np.testing.assert_allclose(ref, got, rtol=1e-10)
        for ref, got in zip(ref_b, got_b):
            np.testing.assert_allclose(ref, got, rtol=1e-10)

    def test_suspend_releases_engine(self, stepping_network, inputs):
        backend = SteppingBackend(stepping_network)
        session = backend.open(inputs)
        session.advance()
        session.suspend()
        assert backend._active is None
        # The session resumes transparently on its next advance.
        outcome = session.advance()
        assert outcome.subnet == 1
