"""Tests for fleet-level serving: routers, ServingCluster and ClusterReport."""

import json

import numpy as np
import pytest

from repro.runtime.platform import ResourceTrace
from repro.serving import (
    ROUTERS,
    ClusterSpec,
    JoinShortestQueueRouter,
    LeastLoadedRouter,
    Request,
    RoundRobinRouter,
    ServingCluster,
    ServingEngine,
    ServingSpec,
    SteppingBackend,
    StreamSpec,
    get_router,
    merge_streams,
    poisson_stream,
    serve,
)


def _engine(network, rate, scheduler="fifo", name="trace"):
    return ServingEngine(
        SteppingBackend(network), ResourceTrace.constant(rate, name=name), scheduler
    )


def _requests(images, labels, count=12, rate=4.0, deadline=None, seed=0):
    return poisson_stream(
        images,
        labels,
        rate=rate,
        num_requests=count,
        relative_deadline=deadline,
        batch_size=2,
        seed=seed,
    )


@pytest.fixture
def calibrated_rate(stepping_network):
    largest = float(stepping_network.subnet_macs(stepping_network.num_subnets - 1))
    return largest / 0.5  # one full-quality request ~= 0.5 s


class TestRouterRegistry:
    def test_at_least_three_policies_registered(self):
        distinct = {cls for cls in ROUTERS.values()}
        assert len(distinct) >= 3
        assert {"round-robin", "join-shortest-queue", "least-loaded"} <= set(ROUTERS)

    def test_get_router_unknown(self):
        with pytest.raises(KeyError, match="router"):
            get_router("random-forwarding")


class TestRouting:
    def test_round_robin_cycles(self, stepping_network, sample_pool, calibrated_rate):
        images, labels = sample_pool
        cluster = ServingCluster(
            [_engine(stepping_network, calibrated_rate) for _ in range(3)],
            router="round-robin",
        )
        partition = cluster.route_requests(_requests(images, labels, count=9))
        assert [len(part) for part in partition] == [3, 3, 3]
        # Arrival order maps 0->node0, 1->node1, 2->node2, 3->node0, ...
        assert [r.request_id for r in partition[0]] == [0, 3, 6]

    def test_join_shortest_queue_prefers_idle_node(self, stepping_network, sample_pool,
                                                   calibrated_rate):
        images, _ = sample_pool
        # Two simultaneous arrivals: JSQ must split them, round-robin would too,
        # but a third immediately after must go to whichever drained first —
        # with equal nodes it lands on the lowest index with the shortest queue.
        cluster = ServingCluster(
            [_engine(stepping_network, calibrated_rate) for _ in range(2)], router="jsq"
        )
        burst = [
            Request(request_id=i, arrival_time=0.0, inputs=images[:2]) for i in range(2)
        ] + [Request(request_id=2, arrival_time=0.01, inputs=images[:2])]
        partition = cluster.route_requests(burst)
        # The two simultaneous arrivals split across nodes; the third sees
        # equal queues again and ties back to node 0.
        assert [{r.request_id for r in part} for part in partition] == [{0, 2}, {1}]

    def test_least_loaded_prefers_faster_node(self, stepping_network, sample_pool,
                                              calibrated_rate):
        """With one node 10x faster, MAC/latency-aware placement piles on it
        until its backlog makes the slow node competitive."""
        images, _ = sample_pool
        fast = _engine(stepping_network, calibrated_rate * 10.0, name="fast")
        slow = _engine(stepping_network, calibrated_rate, name="slow")
        cluster = ServingCluster([slow, fast], router="least-loaded")
        burst = [
            Request(request_id=i, arrival_time=0.0, inputs=images[:2]) for i in range(4)
        ]
        partition = cluster.route_requests(burst)
        # The fast node takes most of the burst even though it is node 1.
        assert len(partition[1]) > len(partition[0])

    def test_least_loaded_beats_jsq_on_heterogeneous_fleet(
        self, stepping_network, sample_pool, calibrated_rate
    ):
        """JSQ is throughput-blind; finishing-time-aware placement must not be
        slower on a fleet with a 20x throughput spread."""
        images, labels = sample_pool
        requests = _requests(images, labels, count=24, rate=8.0)

        def run(router):
            cluster = ServingCluster(
                [
                    _engine(stepping_network, calibrated_rate * 20.0),
                    _engine(stepping_network, calibrated_rate),
                ],
                router=router,
            )
            return cluster.serve(requests)

        assert run("least-loaded").p95_latency <= run("jsq").p95_latency + 1e-9

    def test_duplicate_ids_across_workload_rejected(
        self, stepping_network, sample_pool, calibrated_rate
    ):
        images, labels = sample_pool
        stream_a = _requests(images, labels, count=3)
        stream_b = _requests(images, labels, count=3, seed=1)  # ids also 0..2
        cluster = ServingCluster([_engine(stepping_network, calibrated_rate)])
        with pytest.raises(ValueError, match="merge_streams"):
            cluster.route_requests(stream_a + stream_b)
        merged = merge_streams(stream_a, stream_b)
        assert [len(p) for p in cluster.route_requests(merged)] == [6]


class TestServingCluster:
    def test_single_node_cluster_reproduces_engine_bit_identical(
        self, stepping_network, sample_pool, calibrated_rate
    ):
        """Acceptance criterion: one-node fleet == bare engine, bit for bit."""
        images, labels = sample_pool
        requests = _requests(images, labels, count=10, deadline=1.5)
        spec = ServingSpec(
            backend="stepping",
            scheduler="edf",
            trace="constant",
            trace_rate=calibrated_rate,
            overhead_per_step=0.0,
        )
        cluster = ServingCluster.from_spec(
            ClusterSpec(nodes=(spec,)), stepping_network
        )
        fleet_report = cluster.serve(requests)
        solo_report = spec.build_engine(stepping_network).serve(requests)
        assert fleet_report.node_reports[0].as_dict() == solo_report.as_dict()
        assert fleet_report.num_jobs == solo_report.num_jobs
        assert fleet_report.throughput == pytest.approx(solo_report.throughput)

    def test_three_heterogeneous_nodes_from_json(self, stepping_network, sample_pool):
        """Acceptance criterion: JSON -> ClusterSpec -> ServingCluster -> serve."""
        images, labels = sample_pool
        blob = json.dumps(
            {
                "name": "edge-fleet",
                "router": "least-loaded",
                "nodes": [
                    {"platform": "mobile-soc", "scheduler": "edf", "trace": "steady-high"},
                    {"platform": "vehicle-ecu", "scheduler": "edf", "trace": "steady-high"},
                    {"platform": "embedded-mcu", "scheduler": "fifo", "trace": "steady-high"},
                ],
            }
        )
        cluster = ServingCluster.from_spec(
            ClusterSpec.from_dict(json.loads(blob)), stepping_network
        )
        assert cluster.num_nodes == 3
        requests = _requests(images, labels, count=15, rate=50.0, deadline=2.0)
        report = cluster.serve(requests)
        assert report.num_jobs == 15
        assert report.completed == 15
        served_ids = sorted(
            job.request.request_id for node in report.node_reports for job in node.jobs
        )
        assert served_ids == list(range(15))  # every request served exactly once
        payload = report.as_dict()
        assert payload["router"] == "least-loaded"
        assert len(payload["nodes"]) == 3
        assert payload["num_jobs"] == 15
        json.dumps(payload)  # artifact-ready

    def test_serve_builds_workload_from_spec_streams(self):
        spec = ClusterSpec(
            nodes=(
                ServingSpec(platform="mobile-soc"),
                ServingSpec(platform="vehicle-ecu"),
            ),
            router="round-robin",
            streams=(
                StreamSpec(kind="poisson", params={"rate": 100.0, "num_requests": 6, "seed": 0}),
                StreamSpec(kind="periodic", params={"period": 0.01, "num_requests": 4}),
            ),
            model={"name": "tiny-cnn", "num_subnets": 3},
        )
        report = serve(None, spec)
        assert report.num_jobs == 10
        assert sum(len(node.jobs) for node in report.node_reports) == 10

    def test_serve_requires_streams_or_requests(self, stepping_network):
        spec = ClusterSpec(nodes=(ServingSpec(),))
        with pytest.raises(ValueError, match="streams"):
            serve(stepping_network, spec)

    def test_result_handoff_uses_servable(self, stepping_network, sample_pool, calibrated_rate):
        """Anything exposing ``servable()`` (SteppingNetResult) is accepted."""
        images, labels = sample_pool

        class FakeResult:
            def __init__(self, network):
                self.network = network

            def servable(self):
                self.network.eval()
                return self.network

        stepping_network.train()
        spec = ClusterSpec(
            nodes=(ServingSpec(trace="constant", trace_rate=calibrated_rate),)
        )
        report = serve(FakeResult(stepping_network), spec, _requests(images, labels, count=4))
        assert report.completed == 4
        assert not stepping_network.training  # hand-off switched to eval mode


class TestClusterReport:
    def _report(self, stepping_network, sample_pool, calibrated_rate, router="round-robin"):
        images, labels = sample_pool
        cluster = ServingCluster(
            [
                _engine(stepping_network, calibrated_rate * 4.0),
                _engine(stepping_network, calibrated_rate),
            ],
            router=router,
            names=["fast", "slow"],
        )
        return cluster.serve(_requests(images, labels, count=10, rate=3.0, deadline=2.0))

    def test_fleet_metrics_consistent_with_nodes(
        self, stepping_network, sample_pool, calibrated_rate
    ):
        report = self._report(stepping_network, sample_pool, calibrated_rate)
        assert report.num_jobs == sum(node.num_jobs for node in report.node_reports)
        assert report.completed == sum(
            len(node.completed_jobs) for node in report.node_reports
        )
        assert report.total_macs == pytest.approx(
            sum(node.total_macs for node in report.node_reports)
        )
        assert report.throughput == pytest.approx(report.completed / report.makespan)
        latencies = np.concatenate(
            [node.latencies() for node in report.node_reports]
        )
        assert report.p95_latency == pytest.approx(
            float(np.percentile(latencies, 95)), rel=1e-6
        )

    def test_utilisation_and_imbalance(self, stepping_network, sample_pool, calibrated_rate):
        report = self._report(stepping_network, sample_pool, calibrated_rate)
        assert len(report.node_utilisation) == 2
        assert all(0.0 <= u <= 1.0 for u in report.node_utilisation)
        assert report.load_imbalance == pytest.approx(1.0)  # round-robin on 10 = 5/5
        # The slow node works the same MACs at a quarter of the rate.
        assert report.node_utilisation[1] > report.node_utilisation[0]

    def test_empty_fleet_report(self, stepping_network, calibrated_rate):
        cluster = ServingCluster([_engine(stepping_network, calibrated_rate)])
        report = cluster.serve([])
        assert report.num_jobs == 0
        assert report.throughput == 0.0
        assert np.isnan(report.load_imbalance)


class TestQueueDepthRouting:
    """The real-queue-state router: published depth instead of the fluid model."""

    def test_registered_and_flagged(self):
        from repro.serving import QueueDepthLeastLoadedRouter

        assert "least-loaded-depth" in ROUTERS
        router = get_router("least-loaded-depth")
        assert isinstance(router, QueueDepthLeastLoadedRouter)
        assert router.uses_queue_depth
        assert not get_router("least-loaded").uses_queue_depth

    def test_least_loaded_configurable_signal(self):
        assert LeastLoadedRouter(signal="queue-depth").uses_queue_depth
        with pytest.raises(ValueError, match="signal"):
            LeastLoadedRouter(signal="tea-leaves")

    def test_interleaved_node_reports_match_closed_loop(
        self, stepping_network, sample_pool, calibrated_rate
    ):
        """Exactness: depth-routed nodes == serve() over the same partition."""
        images, labels = sample_pool
        requests = _requests(images, labels, count=14, rate=6.0, deadline=2.0)
        cluster = ServingCluster(
            [
                _engine(stepping_network, calibrated_rate * 2.0),
                _engine(stepping_network, calibrated_rate),
            ],
            router="least-loaded-depth",
            names=["fast", "slow"],
        )
        partition, node_reports = cluster._serve_interleaved(requests)
        for engine_rate, sub_stream, report in zip(
            [calibrated_rate * 2.0, calibrated_rate], partition, node_reports
        ):
            replay = _engine(stepping_network, engine_rate).serve(sub_stream)
            assert replay.as_dict() == report.as_dict()
            for a, b in zip(replay.jobs, report.jobs):
                assert np.array_equal(a.final_logits, b.final_logits)

    def test_depth_signal_spreads_a_burst(self, stepping_network, sample_pool, calibrated_rate):
        """Simultaneous arrivals pile depth on a node and push traffic away."""
        images, _ = sample_pool
        burst = [
            Request(request_id=i, arrival_time=0.001 * i, inputs=images[i % len(images)][None])
            for i in range(8)
        ]
        cluster = ServingCluster(
            [
                _engine(stepping_network, calibrated_rate),
                _engine(stepping_network, calibrated_rate),
            ],
            router="least-loaded-depth",
            names=["a", "b"],
        )
        report = cluster.serve(burst)
        assert report.num_jobs == 8
        assert all(count > 0 for count in report.node_jobs)

    def test_fleet_report_batching_aggregates(self, stepping_network, sample_pool):
        from repro.serving import BatchedSteppingBackend, SameLevelBatching
        from repro.runtime.platform import ResourceTrace

        images, _ = sample_pool
        largest = float(stepping_network.subnet_macs(stepping_network.num_subnets - 1))
        requests = [
            Request(request_id=i, arrival_time=0.0, inputs=images[i][None]) for i in range(8)
        ]
        engine = ServingEngine(
            BatchedSteppingBackend(stepping_network),
            ResourceTrace.constant(largest / 0.05, name="t"),
            batch_policy=SameLevelBatching(8),
        )
        report = ServingCluster([engine], names=["n0"]).serve(requests)
        payload = report.as_dict()
        assert payload["batched_steps"] == report.node_reports[0].batched_steps > 0
        assert payload["solo_steps"] == report.node_reports[0].solo_steps
        assert payload["mean_batch_occupancy"] == pytest.approx(
            report.node_reports[0].mean_batch_occupancy
        )


class TestMemoryAwareRouting:
    """The resident-bytes router and the fleet memory aggregates."""

    def test_registered_and_flagged(self):
        from repro.serving import MemoryAwareLeastLoadedRouter

        assert "least-loaded-memory" in ROUTERS
        router = get_router("least-loaded-memory")
        assert isinstance(router, MemoryAwareLeastLoadedRouter)
        assert router.signal == "memory"
        assert router.needs_live_state  # resident bytes: serve interleaved
        assert not router.uses_queue_depth  # ...but it routes on memory
        assert LeastLoadedRouter(signal="memory").needs_live_state
        assert get_router("least-loaded-depth").needs_live_state
        assert not get_router("least-loaded").needs_live_state

    def test_memory_signal_spreads_a_burst(
        self, stepping_network, sample_pool, calibrated_rate
    ):
        """Resident contexts pile bytes on a node and push traffic away."""
        images, _ = sample_pool
        burst = [
            Request(request_id=i, arrival_time=0.001 * i, inputs=images[i % len(images)][None])
            for i in range(8)
        ]
        cluster = ServingCluster(
            [
                _engine(stepping_network, calibrated_rate),
                _engine(stepping_network, calibrated_rate),
            ],
            router="least-loaded-memory",
            names=["a", "b"],
        )
        report = cluster.serve(burst)
        assert report.num_jobs == 8
        assert all(count > 0 for count in report.node_jobs)

    def test_analytic_resident_bytes_without_live_run(
        self, stepping_network, sample_pool, calibrated_rate
    ):
        """The fluid-model fallback charges each in-system request its
        plan-predicted context footprint."""
        from repro.serving.cluster import NodeState

        images, _ = sample_pool
        engine = _engine(stepping_network, calibrated_rate)
        node = NodeState(0, "n", engine)
        context = engine.backend.context_nbytes(2)  # _requests uses batch_size=2
        assert node.resident_bytes(0.0) == 0
        request = Request(request_id=0, arrival_time=0.0, inputs=images[:2])
        node.assign(request)
        assert node.resident_bytes(0.0) == context
        # Past the predicted completion the estimate drains back to zero.
        assert node.resident_bytes(1e9) == 0

    def test_fleet_report_memory_aggregates(self, stepping_network, sample_pool):
        """ClusterReport sums node evictions and takes the peak residency."""
        import numpy as np

        from repro.core.incremental import IncrementalInference
        from repro.runtime.policies import ConfidencePolicy
        from repro.serving import SteppingBackend

        images, _ = sample_pool
        context = IncrementalInference(stepping_network, dtype=np.float32).plan.state_nbytes(1)
        largest = float(stepping_network.subnet_macs(stepping_network.num_subnets - 1))
        trace = ResourceTrace.constant(largest / 0.4, name="constant")
        rng = np.random.default_rng(2)
        requests, arrival = [], 0.0
        for index in range(14):
            arrival += float(rng.exponential(0.15))
            requests.append(
                Request(
                    request_id=index,
                    arrival_time=arrival,
                    inputs=images[index % len(images)][None],
                    deadline=arrival + float(rng.uniform(0.3, 8.0)),
                )
            )
        engine = ServingEngine(
            SteppingBackend(
                stepping_network,
                policy=ConfidencePolicy(threshold=1.0, respect_deadline=False),
                dtype=np.float32,
            ),
            trace,
            "edf",
            memory_budget_bytes=int(context * 1.2),
            enforce_deadline=False,
        )
        cluster = ServingCluster([engine], names=["only"])
        report = cluster.serve(requests)
        node = report.node_reports[0]
        assert report.cache_evictions == node.cache_evictions > 0
        assert report.aux_evictions == node.aux_evictions > 0
        assert report.peak_resident_bytes == node.peak_resident_bytes
        assert report.total_macs_recomputed == node.total_macs_recomputed > 0
        payload = report.as_dict()
        assert payload["cache_evictions"] == node.cache_evictions
        assert payload["peak_resident_bytes"] == node.peak_resident_bytes
        json.dumps(payload)  # artifact-ready


class TestEndToEndDeterminism:
    """Serving the same ClusterSpec JSON twice is byte-for-byte identical.

    The regression the stack must never lose: every layer — model
    synthesis from seeds, stream generation, routing, scheduling,
    batching, memory eviction — is deterministic, so two fully
    independent builds of the same config produce identical reports.
    """

    CONFIGS = [
        "cluster_smoke.json",
        "cluster_batched.json",
        "cluster_memory.json",
        "cluster_continuous.json",
    ]

    @staticmethod
    def _config_path(name):
        from pathlib import Path

        return Path(__file__).resolve().parents[2] / "benchmarks" / "configs" / name

    @pytest.mark.parametrize("config", CONFIGS)
    def test_serve_twice_byte_identical(self, config):
        first = serve(None, ClusterSpec.from_json(self._config_path(config)))
        second = serve(None, ClusterSpec.from_json(self._config_path(config)))
        assert json.dumps(first.as_dict(), sort_keys=True) == json.dumps(
            second.as_dict(), sort_keys=True
        )

    def test_memory_bounded_fleet_from_json_evicts_and_completes(self):
        """Acceptance: the checked-in memory config exercises eviction."""
        spec = ClusterSpec.from_json(self._config_path("cluster_memory.json"))
        assert spec.router == "least-loaded-memory"
        assert all(node.memory_budget_bytes is not None for node in spec.nodes)
        assert {node.eviction_policy for node in spec.nodes} == {
            "lru",
            "largest-first",
            "lowest-progress",
        }
        report = serve(None, spec)
        payload = report.as_dict()
        assert payload["completed"] + payload["dropped"] == payload["num_jobs"] > 0
        assert payload["cache_evictions"] > 0  # tier 2 genuinely engaged
        assert payload["total_macs_recomputed"] > 0
        for node_spec, node_report in zip(spec.nodes, report.node_reports):
            assert node_report.peak_resident_bytes <= node_spec.memory_budget_bytes
        json.dumps(payload)  # artifact-ready


class TestBatchedFleetFromJson:
    def test_checked_in_batched_cluster_config_serves(self):
        """Acceptance criterion: batching-enabled fleet runs from checked-in JSON."""
        from pathlib import Path

        config = (
            Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "configs"
            / "cluster_batched.json"
        )
        spec = ClusterSpec.from_json(config)
        assert spec.router == "least-loaded-depth"
        assert any(node.batch_policy != "none" for node in spec.nodes)
        assert any(node.num_subnets is not None for node in spec.nodes)
        report = serve(None, spec)
        payload = report.as_dict()
        assert payload["num_jobs"] > 0
        assert payload["completed"] + payload["dropped"] == payload["num_jobs"]
        assert payload["batched_steps"] > 0  # coalescing actually engaged
        json.dumps(payload)  # artifact-ready
        # The shallow node never refines past its declared cap.
        for node_spec, node_report in zip(spec.nodes, report.node_reports):
            if node_spec.num_subnets is not None:
                for job in node_report.jobs:
                    assert job.final_subnet < node_spec.num_subnets
