"""Tests for shared-plan batched serving (`repro.serving.batching`).

The load-bearing property: batched execution is *bit-equal* (same dtype)
to the unbatched compiled path per request — ``batch_policy="none"`` is
the correctness oracle for every coalescing policy.  Verified at the
backend level (``advance_group`` vs solo sessions, group sizes 2/4/8,
conv and MLP networks, both dtypes, ragged member batch sizes) and at
the engine level (whole Poisson streams under FIFO/EDF).
"""

import math

import numpy as np
import pytest

from repro.baselines.common import set_prefix_assignments
from repro.core import SteppingNetwork
from repro.models import mlp
from repro.runtime.platform import ResourceTrace
from repro.serving import (
    BATCH_POLICIES,
    BatchedSteppingBackend,
    NoBatching,
    Request,
    SameLevelBatching,
    ServingEngine,
    SteppingBackend,
    WindowedBatching,
    get_batch_policy,
    periodic_stream,
    poisson_stream,
)


@pytest.fixture
def mlp_network(mlp_spec, rng):
    network = SteppingNetwork(mlp_spec, num_subnets=4, rng=rng)
    set_prefix_assignments(network, [0.3, 0.55, 0.8, 1.0])
    network.assignment.validate()
    return network


def _fast_trace():
    return ResourceTrace.constant(1e12, name="fast")


def _calibrated_trace(network, seconds_for_largest=0.05):
    largest = float(network.subnet_macs(network.num_subnets - 1))
    return ResourceTrace.constant(largest / seconds_for_largest, name="calibrated")


# ----------------------------------------------------------------------
# Policy registry
# ----------------------------------------------------------------------
class TestBatchPolicyRegistry:
    def test_registry_contents(self):
        assert {"none", "same-level", "windowed"} <= set(BATCH_POLICIES)

    def test_get_batch_policy_forwards_knobs(self):
        policy = get_batch_policy("windowed", max_batch_size=4, window=0.25)
        assert isinstance(policy, WindowedBatching)
        assert policy.max_batch_size == 4
        assert policy.window == 0.25
        greedy = get_batch_policy("same-level", max_batch_size=16)
        assert greedy.max_batch_size == 16

    def test_none_ignores_knobs(self):
        policy = get_batch_policy("none", max_batch_size=32, window=1.0)
        assert isinstance(policy, NoBatching)
        assert not policy.coalesces

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="batch policy"):
            get_batch_policy("adaptive-magic")

    def test_invalid_knobs(self):
        with pytest.raises(ValueError):
            SameLevelBatching(max_batch_size=0)
        with pytest.raises(ValueError):
            WindowedBatching(window=-0.1)


# ----------------------------------------------------------------------
# Backend-level group advance: the bit-equality property
# ----------------------------------------------------------------------
class TestAdvanceGroup:
    @pytest.mark.parametrize("group_size", [2, 4, 8])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("model", ["conv", "mlp"])
    def test_bit_equal_to_solo_sessions(
        self, stepping_network, mlp_network, rng, group_size, dtype, model
    ):
        network = stepping_network if model == "conv" else mlp_network
        shape = (3, 12, 12) if model == "conv" else (16,)
        inputs = [rng.standard_normal((1,) + shape) for _ in range(group_size)]
        solo_backend = SteppingBackend(network, dtype=dtype)
        group_backend = BatchedSteppingBackend(network, dtype=dtype)
        solo = [solo_backend.open(batch) for batch in inputs]
        grouped = [group_backend.open(batch) for batch in inputs]
        for _ in range(network.num_subnets):
            solo_outcomes = [session.advance() for session in solo]
            group_outcomes = group_backend.advance_group(grouped)
            for reference, outcome in zip(solo_outcomes, group_outcomes):
                assert outcome.subnet == reference.subnet
                assert outcome.macs_charged == reference.macs_charged
                assert outcome.macs_reused == reference.macs_reused
                assert outcome.logits.dtype == np.dtype(dtype)
                assert np.array_equal(outcome.logits, reference.logits)

    def test_ragged_member_batch_sizes(self, stepping_network, rng):
        """Members with different per-request sample counts still bit-match."""
        sizes = [1, 2, 1, 3]
        inputs = [rng.standard_normal((n, 3, 12, 12)) for n in sizes]
        solo_backend = SteppingBackend(stepping_network)
        group_backend = BatchedSteppingBackend(stepping_network)
        solo = [solo_backend.open(batch) for batch in inputs]
        grouped = [group_backend.open(batch) for batch in inputs]
        for _ in range(stepping_network.num_subnets):
            references = [session.advance() for session in solo]
            outcomes = group_backend.advance_group(grouped)
            for reference, outcome in zip(references, outcomes):
                assert np.array_equal(outcome.logits, reference.logits)

    def test_member_can_leave_the_batch_and_continue_solo(self, stepping_network, rng):
        inputs = [rng.standard_normal((1, 3, 12, 12)) for _ in range(3)]
        backend = BatchedSteppingBackend(stepping_network)
        sessions = [backend.open(batch) for batch in inputs]
        backend.advance_group(sessions)
        # One member steps alone, the rest keep batching: both stay exact.
        alone = sessions[0].advance()
        rest = backend.advance_group(sessions[1:])
        reference_backend = SteppingBackend(stepping_network)
        for index, outcome in zip([0, 1, 2], [alone, *rest]):
            reference = reference_backend.open(inputs[index])
            reference.advance()
            assert np.array_equal(reference.advance().logits, outcome.logits)

    def test_mixed_edges_rejected(self, stepping_network, rng):
        backend = BatchedSteppingBackend(stepping_network)
        ahead = backend.open(rng.standard_normal((1, 3, 12, 12)))
        ahead.advance()
        fresh = backend.open(rng.standard_normal((1, 3, 12, 12)))
        with pytest.raises(ValueError, match="share a subnet edge"):
            backend.advance_group([ahead, fresh])

    def test_empty_group_rejected(self, stepping_network):
        with pytest.raises(ValueError, match="empty"):
            BatchedSteppingBackend(stepping_network).advance_group([])

    def test_base_backend_advances_groups_solo(self, stepping_network, rng):
        """Non-batching backends stay correct under advance_group."""
        backend = SteppingBackend(stepping_network)
        assert not backend.supports_batching
        sessions = [backend.open(rng.standard_normal((1, 3, 12, 12))) for _ in range(2)]
        outcomes = backend.advance_group(sessions)
        assert [outcome.subnet for outcome in outcomes] == [0, 0]


# ----------------------------------------------------------------------
# Engine-level batched serving
# ----------------------------------------------------------------------
class TestBatchedServing:
    def _serve(self, network, requests, *, policy=None, scheduler="fifo", trace=None,
               overhead=0.0, backend_cls=None, **engine_kwargs):
        backend_cls = backend_cls or (
            SteppingBackend if policy is None else BatchedSteppingBackend
        )
        engine = ServingEngine(
            backend_cls(network),
            trace or _fast_trace(),
            scheduler,
            batch_policy=policy,
            overhead_per_step=overhead,
            **engine_kwargs,
        )
        return engine.serve(requests)

    @pytest.mark.parametrize("max_batch_size", [2, 4, 8])
    @pytest.mark.parametrize("scheduler", ["fifo", "edf"])
    def test_stream_logits_bit_equal_to_unbatched(
        self, stepping_network, sample_pool, max_batch_size, scheduler
    ):
        images, labels = sample_pool
        requests = poisson_stream(
            images, labels, rate=50.0, num_requests=24, batch_size=1, seed=0
        )
        trace = _calibrated_trace(stepping_network)
        oracle = self._serve(stepping_network, requests, scheduler=scheduler, trace=trace)
        batched = self._serve(
            stepping_network,
            requests,
            policy=SameLevelBatching(max_batch_size),
            scheduler=scheduler,
            trace=trace,
        )
        assert batched.max_batch_occupancy <= max_batch_size
        for reference, job in zip(oracle.jobs, batched.jobs):
            assert job.request.request_id == reference.request.request_id
            assert job.final_subnet == reference.final_subnet
            assert np.array_equal(job.final_logits, reference.final_logits)

    def test_mlp_stream_logits_bit_equal(self, mlp_network, rng):
        images = rng.standard_normal((16, 16))
        requests = poisson_stream(images, rate=50.0, num_requests=16, batch_size=1, seed=0)
        trace = _calibrated_trace(mlp_network)
        oracle = self._serve(mlp_network, requests, trace=trace)
        batched = self._serve(
            mlp_network, requests, policy=SameLevelBatching(8), trace=trace
        )
        for reference, job in zip(oracle.jobs, batched.jobs):
            assert np.array_equal(job.final_logits, reference.final_logits)

    def test_burst_forms_full_batches(self, stepping_network, sample_pool):
        """Simultaneous arrivals advance as lockstep waves."""
        images, _ = sample_pool
        requests = [
            Request(request_id=i, arrival_time=0.0, inputs=images[i : i + 1])
            for i in range(8)
        ]
        report = self._serve(
            stepping_network,
            requests,
            policy=SameLevelBatching(8),
            trace=_calibrated_trace(stepping_network),
        )
        # One wave: every level of every request runs in a full batch.
        assert report.batch_sizes == [8] * stepping_network.num_subnets
        assert report.mean_batch_occupancy == 8.0
        assert report.batched_steps == 8 * stepping_network.num_subnets
        assert report.solo_steps == 0

    def test_mixed_start_levels_never_share_a_batch(self, stepping_network, sample_pool):
        """A late arrival cannot join jobs already past its start edge."""
        images, _ = sample_pool
        trace = _calibrated_trace(stepping_network, seconds_for_largest=0.4)
        early = [
            Request(request_id=i, arrival_time=0.0, inputs=images[i : i + 1])
            for i in range(2)
        ]
        # Arrives after the early wave finished level 0 (0.4s covers all
        # four levels; level 0 alone is well under 0.25s).
        late = [Request(request_id=2, arrival_time=0.25, inputs=images[2:3])]
        report = self._serve(
            stepping_network, early + late, policy=SameLevelBatching(8), trace=trace
        )
        # The late job's steps must all have run after its arrival — it
        # can never have been folded into the early wave's passes.
        late_record = report.jobs[-1]
        assert late_record.request.request_id == 2
        assert all(step.start_time >= 0.25 for step in late_record.steps)
        # And its results are still exact.
        oracle = self._serve(stepping_network, early + late, trace=trace)
        for reference, job in zip(oracle.jobs, report.jobs):
            assert np.array_equal(job.final_logits, reference.final_logits)

    def test_windowed_policy_coalesces_imminent_arrivals(
        self, stepping_network, sample_pool
    ):
        images, _ = sample_pool
        requests = periodic_stream(images, period=0.01, num_requests=4, batch_size=1)
        report = self._serve(
            stepping_network,
            requests,
            policy=WindowedBatching(max_batch_size=4, window=0.1),
        )
        # The first dispatch waited for all four arrivals (0.00..0.03)
        # and ran them as one full batch.
        assert report.batch_sizes[0] == 4
        first_steps = [job.steps[0] for job in report.jobs]
        assert all(step.start_time == pytest.approx(0.03) for step in first_steps)
        # The wait is bounded by the window from each member's arrival.
        for job in report.jobs:
            assert job.queueing_delay <= 0.1 + 1e-9

    def test_windowed_wait_is_bounded_by_window(self, stepping_network, sample_pool):
        """Arrivals beyond the window do not hold the accelerator."""
        images, _ = sample_pool
        requests = [
            Request(request_id=0, arrival_time=0.0, inputs=images[:1]),
            Request(request_id=1, arrival_time=0.5, inputs=images[1:2]),
        ]
        report = self._serve(
            stepping_network,
            requests,
            policy=WindowedBatching(max_batch_size=4, window=0.05),
        )
        # Request 0 dispatched alone at t=0: the next arrival (0.5) lies
        # outside its window.
        assert report.jobs[0].steps[0].start_time == 0.0
        assert report.batch_sizes[0] == 1

    def test_windowed_wait_never_crosses_a_member_deadline(
        self, stepping_network, sample_pool
    ):
        """An idle coalescing wait must not expire a feasible request."""
        images, _ = sample_pool
        requests = [
            # Trivially feasible alone; the next arrival (0.08) is inside
            # the 0.1s window but past this request's deadline.
            Request(request_id=0, arrival_time=0.0, inputs=images[:1], deadline=0.05),
            Request(request_id=1, arrival_time=0.08, inputs=images[1:2]),
        ]
        report = self._serve(
            stepping_network,
            requests,
            policy=WindowedBatching(max_batch_size=4, window=0.1),
            trace=_calibrated_trace(stepping_network, seconds_for_largest=0.01),
            drop_expired=True,
        )
        first = report.jobs[0]
        assert first.status == "completed"
        assert first.deadline_met
        assert first.steps[0].start_time == 0.0  # dispatched, not held

    def test_batching_amortises_step_overhead(self, stepping_network, sample_pool):
        """Simulated time improves too: one launch overhead per batch."""
        images, _ = sample_pool
        requests = [
            Request(request_id=i, arrival_time=0.0, inputs=images[i : i + 1])
            for i in range(8)
        ]
        solo = self._serve(stepping_network, requests, overhead=1e-3)
        batched = self._serve(
            stepping_network, requests, policy=SameLevelBatching(8), overhead=1e-3
        )
        assert batched.makespan < solo.makespan
        assert batched.num_dispatches < solo.num_dispatches

    def test_coalescing_policy_requires_batched_backend(self, stepping_network):
        with pytest.raises(ValueError, match="batching-capable"):
            ServingEngine(
                SteppingBackend(stepping_network),
                _fast_trace(),
                batch_policy="same-level",
            )

    def test_none_policy_allowed_on_any_backend(self, stepping_network, sample_pool):
        images, _ = sample_pool
        requests = poisson_stream(images, rate=20.0, num_requests=4, seed=0)
        report = self._serve(stepping_network, requests, policy=None)
        assert report.batch_policy_name == "none"
        assert report.batch_sizes == [1] * report.num_dispatches

    def test_report_as_dict_has_batch_fields(self, stepping_network, sample_pool):
        images, _ = sample_pool
        requests = poisson_stream(images, rate=20.0, num_requests=4, batch_size=1, seed=0)
        report = self._serve(stepping_network, requests, policy=SameLevelBatching(4))
        payload = report.as_dict()
        assert payload["batch_policy"] == "same-level"
        for key in (
            "dispatches",
            "solo_steps",
            "batched_steps",
            "mean_batch_occupancy",
            "max_batch_occupancy",
        ):
            assert key in payload
        # Every executed step is either solo or part of a shared pass.
        total_steps = sum(len(job.steps) for job in report.jobs)
        assert report.solo_steps + report.batched_steps == total_steps

    def test_deadline_semantics_preserved_under_batching(
        self, stepping_network, sample_pool
    ):
        """drop_expired + enforce_deadline still hold with batching on."""
        images, _ = sample_pool
        trace = _calibrated_trace(stepping_network, seconds_for_largest=0.4)
        requests = poisson_stream(
            images,
            rate=40.0,
            num_requests=16,
            relative_deadline=0.3,
            batch_size=1,
            seed=0,
        )
        report = self._serve(
            stepping_network,
            requests,
            policy=SameLevelBatching(8),
            trace=trace,
            drop_expired=True,
        )
        assert report.num_jobs == 16
        for job in report.jobs:
            if job.status == "dropped":
                assert not job.steps
            for step in job.steps:
                assert math.isfinite(step.finish_time)


# ----------------------------------------------------------------------
# ServingRun: the resumable event loop behind serve()
# ----------------------------------------------------------------------
class TestServingRun:
    def test_incremental_pushes_match_closed_loop(self, stepping_network, sample_pool):
        images, labels = sample_pool
        requests = poisson_stream(
            images, labels, rate=30.0, num_requests=12, batch_size=1, seed=0
        )
        engine = ServingEngine(
            SteppingBackend(stepping_network),
            _calibrated_trace(stepping_network),
            "edf",
        )
        closed = engine.serve(requests)
        run = engine.open_run()
        for request in sorted(requests, key=lambda r: r.arrival_time):
            run.run_until(request.arrival_time)
            run.push(request)
        incremental = run.finish()
        assert incremental.as_dict() == closed.as_dict()
        for a, b in zip(closed.jobs, incremental.jobs):
            assert np.array_equal(a.final_logits, b.final_logits)
            assert [s.finish_time for s in a.steps] == [s.finish_time for s in b.steps]

    def test_queue_depth_published_at_step_boundaries(
        self, stepping_network, sample_pool
    ):
        images, _ = sample_pool
        engine = ServingEngine(
            SteppingBackend(stepping_network),
            _calibrated_trace(stepping_network, seconds_for_largest=1.0),
        )
        run = engine.open_run()
        assert run.queue_depth == 0
        for i in range(3):
            run.push(Request(request_id=i, arrival_time=0.0, inputs=images[i : i + 1]))
        # Nothing processed yet: the published signal lags the pushes.
        assert run.queue_depth == 0
        run.run_until(0.0)
        assert run.queue_depth > 0
        run.finish()
        assert run.queue_depth == 0

    def test_duplicate_push_rejected(self, stepping_network, sample_pool):
        images, _ = sample_pool
        run = ServingEngine(SteppingBackend(stepping_network), _fast_trace()).open_run()
        run.push(Request(request_id=1, arrival_time=0.0, inputs=images[:1]))
        with pytest.raises(ValueError, match="already pushed"):
            run.push(Request(request_id=1, arrival_time=0.1, inputs=images[:1]))

    def test_push_after_finish_rejected(self, stepping_network, sample_pool):
        images, _ = sample_pool
        run = ServingEngine(SteppingBackend(stepping_network), _fast_trace()).open_run()
        run.finish()
        with pytest.raises(RuntimeError, match="finished"):
            run.push(Request(request_id=0, arrival_time=0.0, inputs=images[:1]))
