"""Tests for the declarative serving specs (ServingSpec / ClusterSpec / StreamSpec)."""

import json

import numpy as np
import pytest

from repro.runtime.platform import PLATFORMS, get_platform
from repro.serving import (
    ClusterSpec,
    ServingEngine,
    ServingSpec,
    StreamSpec,
    get_policy,
    poisson_stream,
)


class TestServingSpec:
    def test_json_round_trip(self):
        spec = ServingSpec(
            name="edge0",
            backend="recompute",
            scheduler="edf",
            platform="vehicle-ecu",
            trace="duty-cycle",
            trace_scale=0.5,
            policy="confidence",
            policy_params={"threshold": 0.8},
            drop_expired=True,
            dtype="float64",
        )
        blob = json.dumps(spec.to_dict())
        assert ServingSpec.from_dict(json.loads(blob)) == spec

    def test_unknown_registry_names_fail_at_construction(self):
        with pytest.raises(KeyError, match="backend"):
            ServingSpec(backend="quantum")
        with pytest.raises(KeyError, match="scheduler"):
            ServingSpec(scheduler="lottery")
        with pytest.raises(KeyError, match="platform"):
            ServingSpec(platform="datacenter-gpu")
        with pytest.raises(KeyError, match="policy"):
            ServingSpec(policy="oracle")

    def test_unknown_config_key_rejected(self):
        with pytest.raises(KeyError, match="schedulr"):
            ServingSpec.from_dict({"schedulr": "edf"})

    def test_scheduler_params_round_trip_and_build(self, stepping_network):
        from repro.serving import BatchAwareScheduler

        spec = ServingSpec(
            scheduler="batch-aware", scheduler_params={"min_slack": 0.25}
        )
        blob = json.dumps(spec.to_dict())
        assert ServingSpec.from_dict(json.loads(blob)) == spec
        scheduler = spec.build_scheduler()
        assert isinstance(scheduler, BatchAwareScheduler)
        assert scheduler.min_slack == 0.25
        engine = spec.build_engine(stepping_network)
        assert engine.scheduler.name == "batch-aware"
        assert engine.scheduler.min_slack == 0.25

    def test_scheduler_params_validated_at_construction(self):
        with pytest.raises(TypeError):
            ServingSpec(scheduler="fifo", scheduler_params={"min_slack": 0.25})
        with pytest.raises(ValueError, match="min_slack"):
            ServingSpec(scheduler="batch-aware", scheduler_params={"min_slack": -1.0})

    def test_cost_aware_schedulers_and_continuous_policy_resolve(
        self, stepping_network
    ):
        for name in ("batch-aware", "least-recompute", "utility-per-mac"):
            spec = ServingSpec(
                backend="batched", scheduler=name, batch_policy="continuous",
                max_batch_size=16,
            )
            engine = spec.build_engine(stepping_network)
            assert engine.scheduler.name == name
            assert engine.batch_policy.name == "continuous"
            assert engine.batch_policy.max_batch_size == 16
            assert engine.batch_policy.refills
        recompute = ServingSpec(
            backend="batched-recompute", batch_policy="continuous"
        ).build_engine(stepping_network)
        assert recompute.backend.supports_batching
        assert not recompute.backend.reuses_activations

    def test_constant_trace_requires_rate(self):
        with pytest.raises(ValueError, match="trace_rate"):
            ServingSpec(trace="constant")
        trace = ServingSpec(trace="constant", trace_rate=123.0).build_trace()
        assert trace.throughput_at(1.0) == pytest.approx(123.0)

    def test_trace_resolved_from_platform_library(self):
        spec = ServingSpec(platform="mobile-soc", trace="steady-low", trace_scale=2.0)
        platform = get_platform("mobile-soc")
        low = min(platform.power_modes.values())
        assert spec.build_trace().throughput_at(0.0) == pytest.approx(
            platform.peak_macs_per_second * low * 2.0
        )

    def test_unknown_trace_name_fails_at_build(self):
        spec = ServingSpec(trace="solar-flare")
        with pytest.raises(KeyError, match="solar-flare"):
            spec.build_trace()

    def test_overhead_defaults_to_platform_invocation_overhead(self, stepping_network):
        spec = ServingSpec(platform="embedded-mcu", trace="constant", trace_rate=1e9)
        engine = spec.build_engine(stepping_network)
        assert engine.overhead_per_step == get_platform("embedded-mcu").invocation_overhead
        explicit = ServingSpec(
            platform="embedded-mcu", trace="constant", trace_rate=1e9, overhead_per_step=0.0
        )
        assert explicit.build_engine(stepping_network).overhead_per_step == 0.0

    def test_built_engine_matches_hand_wired_engine(self, stepping_network, sample_pool):
        """The spec path reproduces the imperative path bit-for-bit."""
        from repro.serving import SteppingBackend

        images, labels = sample_pool
        largest = float(stepping_network.subnet_macs(stepping_network.num_subnets - 1))
        rate = largest / 0.4
        requests = poisson_stream(
            images, labels, rate=3.0, num_requests=12, relative_deadline=1.0, batch_size=2, seed=0
        )
        spec = ServingSpec(
            backend="stepping",
            scheduler="edf",
            trace="constant",
            trace_rate=rate,
            overhead_per_step=0.0,
        )
        from repro.runtime.platform import ResourceTrace

        manual = ServingEngine(
            SteppingBackend(stepping_network),
            ResourceTrace.constant(rate, name="constant"),
            "edf",
        )
        assert spec.build_engine(stepping_network).serve(requests).as_dict() == manual.serve(
            requests
        ).as_dict()

    def test_platform_registry_contains_paper_devices(self):
        assert {"mobile-soc", "vehicle-ecu", "embedded-mcu"} <= set(PLATFORMS)


class TestStreamSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError, match="stream"):
            StreamSpec(kind="adversarial")

    def test_builds_from_explicit_pool(self, sample_pool):
        images, labels = sample_pool
        spec = StreamSpec(kind="periodic", params={"period": 0.5, "num_requests": 5})
        requests = spec.build(images, labels)
        assert len(requests) == 5
        assert requests[1].arrival_time == pytest.approx(0.5)

    def test_synthesised_pool_is_deterministic(self):
        spec = StreamSpec(
            kind="poisson", params={"rate": 2.0, "num_requests": 6, "seed": 3}, pool_seed=7
        )
        first = spec.build(input_shape=(3, 8, 8))
        second = spec.build(input_shape=(3, 8, 8))
        for a, b in zip(first, second):
            assert a.arrival_time == b.arrival_time
            np.testing.assert_array_equal(a.inputs, b.inputs)

    def test_requires_pool_or_shape(self):
        spec = StreamSpec(kind="periodic", params={"period": 1.0, "num_requests": 2})
        with pytest.raises(ValueError, match="input_shape"):
            spec.build()


class TestClusterSpec:
    def _cluster(self):
        return ClusterSpec(
            nodes=(
                ServingSpec(platform="mobile-soc", scheduler="edf"),
                ServingSpec(platform="vehicle-ecu", scheduler="edf"),
                ServingSpec(platform="embedded-mcu", scheduler="fifo"),
            ),
            router="join-shortest-queue",
            streams=(
                StreamSpec(kind="poisson", params={"rate": 5.0, "num_requests": 8, "seed": 0}),
                StreamSpec(kind="periodic", params={"period": 0.3, "num_requests": 4}),
            ),
            model={"name": "tiny-cnn", "num_subnets": 4},
            name="fleet",
        )

    def test_json_round_trip(self):
        spec = self._cluster()
        blob = json.dumps(spec.to_dict())
        recovered = ClusterSpec.from_dict(json.loads(blob))
        assert recovered == spec
        assert recovered.to_dict() == spec.to_dict()

    def test_from_json_accepts_string_and_path(self, tmp_path):
        spec = self._cluster()
        blob = json.dumps(spec.to_dict())
        assert ClusterSpec.from_json(blob) == spec
        path = tmp_path / "fleet.json"
        path.write_text(blob)
        assert ClusterSpec.from_json(path) == spec

    def test_needs_at_least_one_node(self):
        with pytest.raises(ValueError, match="at least one node"):
            ClusterSpec(nodes=())

    def test_unknown_router_fails_at_config_load(self):
        """A router typo must fail at construction, not after the model build."""
        with pytest.raises(KeyError, match="router"):
            ClusterSpec(nodes=(ServingSpec(),), router="least-loadd")

    def test_duplicate_node_names_auto_disambiguated(self):
        spec = ClusterSpec(
            nodes=(ServingSpec(platform="mobile-soc"), ServingSpec(platform="mobile-soc"))
        )
        names = [node.node_name for node in spec.nodes]
        assert len(set(names)) == 2

    def test_disambiguation_leaves_unique_names_untouched(self):
        spec = ClusterSpec(
            nodes=(
                ServingSpec(platform="mobile-soc"),
                ServingSpec(platform="mobile-soc"),
                ServingSpec(platform="vehicle-ecu"),
            )
        )
        assert spec.nodes[2].node_name == "vehicle-ecu/stepping"
        assert len({node.node_name for node in spec.nodes}) == 3

    def test_build_network_from_model_config(self):
        network = self._cluster().build_network()
        assert network.num_subnets == 4
        macs = [network.subnet_macs(level) for level in range(4)]
        assert macs == sorted(macs) and macs[0] < macs[-1]
        assert not network.training  # eval mode: plan-compatible BN semantics

    def test_unknown_model_key_rejected(self):
        spec = ClusterSpec(
            nodes=(ServingSpec(),), model={"name": "tiny-cnn", "depth": 99}
        )
        with pytest.raises(KeyError, match="depth"):
            spec.build_network()

    def test_build_requests_merges_streams_with_unique_ids(self, sample_pool):
        images, labels = sample_pool
        requests = self._cluster().build_requests(images, labels)
        assert len(requests) == 12
        ids = [request.request_id for request in requests]
        assert len(set(ids)) == len(ids)
        arrivals = [request.arrival_time for request in requests]
        assert arrivals == sorted(arrivals)


class TestPolicyRegistry:
    def test_policies_resolve(self):
        from repro.runtime.policies import ConfidencePolicy, GreedyPolicy

        assert isinstance(get_policy("greedy"), GreedyPolicy)
        confident = get_policy("confidence", threshold=0.5)
        assert isinstance(confident, ConfidencePolicy)
        assert confident.threshold == 0.5
        full = get_policy("full-quality")
        assert full.threshold == 1.0 and not full.respect_deadline

    def test_unknown_policy(self):
        with pytest.raises(KeyError, match="policy"):
            get_policy("oracle")


class TestMemoryKnobs:
    def test_memory_fields_round_trip(self):
        spec = ServingSpec(
            memory_budget_bytes=262144.0,
            eviction_policy="largest-first",
        )
        blob = json.dumps(spec.to_dict())
        restored = ServingSpec.from_dict(json.loads(blob))
        assert restored == spec
        assert restored.memory_budget_bytes == 262144.0
        assert restored.eviction_policy == "largest-first"

    def test_unbounded_default_round_trips(self):
        spec = ServingSpec()
        blob = json.dumps(spec.to_dict())
        restored = ServingSpec.from_dict(json.loads(blob))
        assert restored.memory_budget_bytes is None
        assert restored.eviction_policy == "lru"

    def test_cluster_spec_round_trips_memory_knobs(self):
        cluster = ClusterSpec(
            nodes=(
                ServingSpec(name="tight", memory_budget_bytes=65536, eviction_policy="lowest-progress"),
                ServingSpec(name="roomy"),
            ),
            streams=(StreamSpec(kind="poisson", params={"rate": 5.0, "num_requests": 4}),),
        )
        blob = json.dumps(cluster.to_dict())
        restored = ClusterSpec.from_dict(json.loads(blob))
        assert restored == cluster
        assert restored.nodes[0].memory_budget_bytes == 65536
        assert restored.nodes[1].memory_budget_bytes is None

    def test_invalid_memory_knobs_rejected(self):
        with pytest.raises(ValueError, match="memory_budget_bytes"):
            ServingSpec(memory_budget_bytes=0)
        with pytest.raises(ValueError, match="memory_budget_bytes"):
            ServingSpec(memory_budget_bytes=-4096)
        # Values MemoryBudget cannot represent fail at config load too.
        with pytest.raises(ValueError, match="memory_budget_bytes"):
            ServingSpec(memory_budget_bytes=float("inf"))
        with pytest.raises(ValueError, match="memory_budget_bytes"):
            ServingSpec(memory_budget_bytes=0.5)  # truncates to zero bytes
        with pytest.raises(KeyError, match="eviction"):
            ServingSpec(eviction_policy="round-robin")

    def test_build_engine_wires_memory_budget(self, stepping_network):
        spec = ServingSpec(
            trace="constant",
            trace_rate=1e9,
            memory_budget_bytes=131072,
            eviction_policy="largest-first",
        )
        engine = spec.build_engine(stepping_network)
        assert engine.memory_budget.budget_bytes == 131072
        assert engine.memory_budget.policy.name == "largest-first"
        unbounded = ServingSpec(trace="constant", trace_rate=1e9).build_engine(
            stepping_network
        )
        assert unbounded.memory_budget.budget_bytes is None


class TestBatchingAndCapKnobs:
    def test_batching_fields_round_trip(self):
        spec = ServingSpec(
            backend="batched",
            batch_policy="windowed",
            max_batch_size=4,
            batch_window=0.01,
            num_subnets=2,
        )
        blob = json.dumps(spec.to_dict())
        assert ServingSpec.from_dict(json.loads(blob)) == spec

    def test_unknown_batch_policy_fails_at_config_load(self):
        with pytest.raises(KeyError, match="batch policy"):
            ServingSpec(backend="batched", batch_policy="adaptive")

    def test_coalescing_policy_requires_batched_backend(self):
        with pytest.raises(ValueError, match="batching-capable"):
            ServingSpec(backend="stepping", batch_policy="same-level")
        # The non-coalescing default stays legal on every backend.
        ServingSpec(backend="stepping", batch_policy="none")

    def test_invalid_batch_knobs_rejected(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            ServingSpec(backend="batched", batch_policy="same-level", max_batch_size=0)
        with pytest.raises(ValueError, match="batch_window"):
            ServingSpec(backend="batched", batch_policy="windowed", batch_window=-1.0)
        with pytest.raises(ValueError, match="num_subnets"):
            ServingSpec(num_subnets=0)

    def test_build_engine_wires_batch_policy(self, stepping_network):
        spec = ServingSpec(
            backend="batched",
            batch_policy="windowed",
            max_batch_size=4,
            batch_window=0.02,
            trace="constant",
            trace_rate=1e9,
        )
        engine = spec.build_engine(stepping_network)
        assert engine.batch_policy.name == "windowed"
        assert engine.batch_policy.max_batch_size == 4
        assert engine.batch_policy.window == pytest.approx(0.02)
        assert engine.backend.supports_batching

    def test_num_subnets_cap_limits_served_levels(self, stepping_network, sample_pool):
        """A shallow node stops refining at its declared cap."""
        images, labels = sample_pool
        spec = ServingSpec(
            trace="constant",
            trace_rate=1e12,
            overhead_per_step=0.0,
            num_subnets=2,
        )
        engine = spec.build_engine(stepping_network)
        assert engine.backend.num_subnets == 2
        requests = poisson_stream(images, labels, rate=50.0, num_requests=6, seed=0)
        report = engine.serve(requests)
        assert report.completed_jobs
        assert all(job.final_subnet == 1 for job in report.jobs)
        assert all(job.stop_reason == "largest subnet reached" for job in report.jobs)

    def test_num_subnets_cap_shrinks_advertised_demand(self, stepping_network):
        """Routers see the capped node's smaller service demand."""
        full = ServingSpec(trace="constant", trace_rate=1e9)
        shallow = ServingSpec(trace="constant", trace_rate=1e9, num_subnets=2)
        full_backend = full.build_backend(stepping_network)
        shallow_backend = shallow.build_backend(stepping_network)
        assert shallow_backend.num_subnets == 2
        assert shallow_backend.subnet_macs(
            shallow_backend.num_subnets - 1
        ) < full_backend.subnet_macs(full_backend.num_subnets - 1)

    def test_cap_larger_than_model_is_harmless(self, stepping_network):
        spec = ServingSpec(trace="constant", trace_rate=1e9, num_subnets=99)
        backend = spec.build_backend(stepping_network)
        assert backend.num_subnets == stepping_network.num_subnets
