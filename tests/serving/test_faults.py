"""Chaos tests: fault injection, checkpointed failover and admission.

The headline invariant, inherited from the eviction and batching layers
and now stated under *node failures*: for any seeded fault schedule that
leaves at least one node alive, every request that is not rejected and
not expired completes with logits **bit-identical** to fault-free
serving — failover replays the checkpointed subnet-level history on the
surviving node and charges the recompute MACs honestly, exactly like an
eviction resume.  Faults may only trade latency and MACs for
availability, never answers.
"""

import json

import numpy as np
import pytest

from repro.core.incremental import IncrementalInference
from repro.runtime.platform import ResourceTrace
from repro.runtime.policies import ConfidencePolicy
from repro.serving import (
    ClusterSpec,
    CrashFault,
    FaultSpec,
    ObservabilitySpec,
    PartitionFault,
    Request,
    RetryPolicy,
    ServingCluster,
    ServingEngine,
    SlowdownFault,
    SteppingBackend,
    TransientFault,
    fault_from_dict,
)
from repro.serving.faults import derate_trace
from repro.utils.errors import ConfigError


def _full_quality():
    """Time-blind refinement to the top subnet (see test_memory)."""
    return ConfidencePolicy(threshold=1.0, respect_deadline=False)


def _constant_trace(network, seconds_for_largest=0.4):
    largest = float(network.subnet_macs(network.num_subnets - 1))
    return ResourceTrace.constant(largest / seconds_for_largest, name="constant")


def _engine(network, **kwargs):
    kwargs.setdefault("enforce_deadline", False)
    return ServingEngine(
        SteppingBackend(network, policy=_full_quality()),
        _constant_trace(network),
        "fifo",
        **kwargs,
    )


def _requests(images, count, gap=0.05, deadline=None):
    return [
        Request(
            request_id=index,
            arrival_time=index * gap,
            inputs=images[index % len(images)][None],
            deadline=None if deadline is None else index * gap + deadline,
        )
        for index in range(count)
    ]


def _oracle_steps(network, job):
    """Solo incremental inference over the job's executed level sequence."""
    oracle = IncrementalInference(network, dtype=np.float32)
    results = [oracle.run(job.request.inputs, subnet=job.steps[0].subnet)]
    for step in job.steps[1:]:
        results.append(oracle.step_to(step.subnet))
    return results


def _assert_jobs_bit_equal_to_oracle(network, jobs):
    for job in jobs:
        if job.status != "completed":
            continue
        reference = _oracle_steps(network, job)
        for step, ref in zip(job.steps, reference):
            assert step.subnet == ref.subnet
            assert np.array_equal(step.logits, ref.logits)
        assert np.array_equal(job.final_logits, reference[-1].logits)


# ----------------------------------------------------------------------
# FaultSpec serialisation and validation
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_json_round_trip_all_kinds(self):
        spec = FaultSpec(
            events=(
                CrashFault(node="a", time=0.5, recover_time=2.0),
                CrashFault(node="b", time=1.0),
                TransientFault(node="a", time=0.25),
                SlowdownFault(node="b", time=0.0, duration=1.5, factor=0.5),
                PartitionFault(node="a", time=0.75, duration=0.5),
            ),
            retry=RetryPolicy(kind="fixed", base_delay=0.01, max_delay=0.01),
        )
        payload = json.loads(json.dumps(spec.to_dict()))
        assert FaultSpec.from_dict(payload) == spec

    def test_dict_events_converted_in_constructor(self):
        spec = FaultSpec(events=({"kind": "crash", "node": "a", "time": 1.0},))
        assert spec.events == (CrashFault(node="a", time=1.0),)

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind 'meteor'"):
            fault_from_dict({"kind": "meteor", "node": "a", "time": 0.0})

    def test_unknown_fault_key_rejected(self):
        with pytest.raises(ValueError, match="unknown crash fault key"):
            fault_from_dict({"kind": "crash", "node": "a", "time": 0.0, "blast": 1})

    def test_unknown_retry_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown retry policy 'psychic'"):
            RetryPolicy(kind="psychic")

    def test_injector_rejects_unknown_node(self):
        spec = FaultSpec(events=(CrashFault(node="ghost", time=1.0),))
        with pytest.raises(ValueError, match="unknown node 'ghost'"):
            spec.injector(["a", "b"])

    def test_invalid_event_parameters_rejected(self):
        with pytest.raises(ValueError, match="recover_time"):
            CrashFault(node="a", time=2.0, recover_time=1.0)
        with pytest.raises(ValueError, match="factor"):
            SlowdownFault(node="a", time=0.0, duration=1.0, factor=0.0)
        with pytest.raises(ValueError, match="duration"):
            PartitionFault(node="a", time=0.0, duration=-1.0)

    def test_seeded_random_is_deterministic_and_spares_first_node(self):
        names = ["a", "b", "c"]
        kwargs = dict(
            horizon=10.0, seed=7, crash_rate=0.3, transient_rate=0.5,
            slowdown_rate=0.2, partition_rate=0.2,
        )
        first = FaultSpec.random(names, **kwargs)
        second = FaultSpec.random(names, **kwargs)
        assert first == second
        assert first.events  # the rates are high enough to draw something
        assert not any(
            event.node == "a" for event in first.events if event.kind == "crash"
        )


class TestRetryPolicy:
    def test_exponential_backoff_caps(self):
        policy = RetryPolicy(base_delay=0.01, multiplier=2.0, max_delay=0.03)
        assert policy.backoff(0) == pytest.approx(0.01)
        assert policy.backoff(1) == pytest.approx(0.02)
        assert policy.backoff(2) == pytest.approx(0.03)  # capped
        assert policy.backoff(9) == pytest.approx(0.03)

    def test_fixed_and_none_kinds(self):
        assert RetryPolicy(kind="fixed", base_delay=0.02).backoff(5) == 0.02
        disabled = RetryPolicy(kind="none")
        assert disabled.budget == 0
        assert RetryPolicy(max_retries=4).budget == 4


class TestInjectorQueries:
    def test_alive_and_reachable_intervals_are_half_open(self):
        spec = FaultSpec(
            events=(
                CrashFault(node="a", time=1.0, recover_time=2.0),
                PartitionFault(node="a", time=3.0, duration=1.0),
            )
        )
        inj = spec.injector(["a"])
        assert inj.alive("a", 0.999) and not inj.alive("a", 1.0)
        assert not inj.alive("a", 1.999) and inj.alive("a", 2.0)
        # Partition blocks routing but not liveness.
        assert inj.alive("a", 3.5) and not inj.reachable("a", 3.5)
        assert inj.reachable("a", 4.0)
        assert inj.transitions("a") == [(1.0, "crash"), (2.0, "recover")]

    def test_transients_are_one_shot(self):
        inj = FaultSpec(events=(TransientFault(node="a", time=1.0),)).injector(["a"])
        assert not inj.consume_transient("a", 0.5)
        assert inj.consume_transient("a", 1.5)
        assert not inj.consume_transient("a", 2.0)  # already consumed

    def test_next_reachable_skips_blocked_windows(self):
        spec = FaultSpec(
            events=(
                CrashFault(node="a", time=0.0),  # never recovers
                PartitionFault(node="b", time=0.0, duration=2.0),
            )
        )
        inj = spec.injector(["a", "b"])
        assert inj.next_reachable(0.5) == 2.0
        spec_dead = FaultSpec(events=(CrashFault(node="a", time=0.0),))
        assert spec_dead.injector(["a"]).next_reachable(0.5) == np.inf

    def test_derate_trace_multiplies_inside_window(self):
        trace = ResourceTrace.constant(100.0, name="flat")
        derated = derate_trace(trace, [(1.0, 2.0, 0.5)])
        assert derated.throughput_at(0.5) == pytest.approx(100.0)
        assert derated.throughput_at(1.5) == pytest.approx(50.0)
        assert derated.throughput_at(2.0) == pytest.approx(100.0)


# ----------------------------------------------------------------------
# Engine-level faults: transients, retry budget, watchdog
# ----------------------------------------------------------------------
class TestEngineFaults:
    def test_transient_failure_retries_bit_equal(self, stepping_network, sample_pool):
        images, _ = sample_pool
        requests = _requests(images, count=4)
        baseline = _engine(stepping_network).serve(requests)

        faults = FaultSpec(events=(TransientFault(node="n0", time=0.0),))
        engine = _engine(stepping_network, retry_policy=faults.retry)
        run = engine.open_run(fault_injector=faults.injector(["n0"]), node="n0")
        for request in _requests(images, count=4):
            run.push(request)
        report = run.finish()

        assert report.retries == 1
        assert sum(job.retries for job in report.jobs) == 1
        assert len(report.completed_jobs) == 4
        for a, b in zip(baseline.jobs, report.jobs):
            assert np.array_equal(a.final_logits, b.final_logits)
        # The failed attempt burned time but no MACs.
        assert report.total_macs == baseline.total_macs
        assert report.makespan > baseline.makespan

    def test_retry_budget_exhaustion_drops_unstarted_job(
        self, stepping_network, sample_pool
    ):
        images, _ = sample_pool
        faults = FaultSpec(
            events=(TransientFault(node="n0", time=0.0),),
            retry=RetryPolicy(kind="none"),
        )
        engine = _engine(stepping_network, retry_policy=faults.retry)
        run = engine.open_run(fault_injector=faults.injector(["n0"]), node="n0")
        run.push(_requests(images, count=1)[0])
        report = run.finish()
        # Budget 0: the first failure finalises the job; it never
        # executed a step, so there is nothing anytime to return.
        assert report.jobs[0].status == "dropped"
        assert report.jobs[0].retries == 1

    def test_watchdog_finalises_stuck_job_with_partial_result(
        self, stepping_network, sample_pool
    ):
        images, _ = sample_pool
        # Two requests race on one node; the watchdog cuts service at
        # 0.45 s per request — enough for some but not all four levels.
        engine = _engine(stepping_network, max_service_time=0.45)
        report = engine.serve(_requests(images, count=2, gap=0.0))
        flagged = [job for job in report.jobs if job.timed_out]
        assert flagged
        assert report.timed_out == len(flagged)
        for job in flagged:
            assert job.status == "completed"
            assert job.steps  # best-so-far anytime prediction
            assert job.final_subnet < stepping_network.num_subnets - 1
            assert job.stop_reason == "max service time exceeded"
            assert np.array_equal(job.final_logits, job.steps[-1].logits)


# ----------------------------------------------------------------------
# Cluster-level failover
# ----------------------------------------------------------------------
def _cluster(network, num_nodes=2, faults=None, admission="none", router="round-robin",
             **engine_kwargs):
    engines = [_engine(network, **engine_kwargs) for _ in range(num_nodes)]
    return ServingCluster(
        engines,
        router=router,
        names=[f"n{i}" for i in range(num_nodes)],
        faults=faults,
        admission=admission,
    )


class TestClusterFailover:
    def test_crash_migrates_and_fails_over_bit_exact(
        self, stepping_network, sample_pool
    ):
        images, _ = sample_pool
        burst = lambda: _requests(images, count=10, gap=0.0)
        baseline = _cluster(stepping_network).serve(burst())
        # Crash node n1 while it is mid-way through its half of the burst.
        n1_jobs = baseline.node_reports[1].jobs
        crash_at = n1_jobs[len(n1_jobs) // 2].steps[0].finish_time
        faults = FaultSpec(events=(CrashFault(node="n1", time=float(crash_at)),))
        report = _cluster(stepping_network, faults=faults).serve(burst())

        assert report.num_jobs == 10
        assert report.as_dict()["completed"] == 10
        assert report.lost == 0 and report.rejected == 0
        assert report.migrations > 0 and report.failovers > 0
        assert report.retries >= report.failovers
        # Each request has exactly one record fleet-wide.
        ids = sorted(job.request.request_id for job in report._jobs)
        assert ids == list(range(10))
        _assert_jobs_bit_equal_to_oracle(stepping_network, report._jobs)
        # Failover replay is charged honestly and exactly.
        assert report.total_macs_recomputed > 0
        assert report.total_macs - report.total_macs_recomputed == pytest.approx(
            baseline.total_macs
        )

    def test_crash_with_no_survivor_returns_best_effort(
        self, stepping_network, sample_pool
    ):
        images, _ = sample_pool
        baseline = _cluster(stepping_network, num_nodes=1).serve(
            _requests(images, count=3, gap=0.0)
        )
        crash_at = baseline.node_reports[0].jobs[0].steps[1].finish_time
        faults = FaultSpec(events=(CrashFault(node="n0", time=float(crash_at)),))
        report = _cluster(stepping_network, num_nodes=1, faults=faults).serve(
            _requests(images, count=3, gap=0.0)
        )
        assert report.num_jobs == 3
        jobs = {job.request.request_id: job for job in report._jobs}
        # The in-flight job keeps its best-so-far anytime prediction.
        started = jobs[0]
        assert started.status == "completed"
        assert 0 < len(started.steps) < stepping_network.num_subnets
        assert np.array_equal(started.final_logits, started.steps[-1].logits)
        # Queued-but-unstarted requests are lost: no node ever comes back.
        assert report.lost == 2
        assert all(jobs[i].status == "lost" for i in (1, 2))
        _assert_jobs_bit_equal_to_oracle(stepping_network, report._jobs)

    def test_recovered_node_serves_again(self, stepping_network, sample_pool):
        images, _ = sample_pool
        faults = FaultSpec(
            events=(CrashFault(node="n1", time=0.01, recover_time=0.4),)
        )
        requests = _requests(images, count=8, gap=0.2)  # last arrives at 1.4 s
        report = _cluster(stepping_network, faults=faults).serve(requests)
        assert report.as_dict()["completed"] == 8
        # Arrivals after 0.4 s round-robin back onto the recovered node;
        # its merged report carries jobs from the new incarnation.
        assert any(
            job.request.arrival_time > 0.4 for job in report.node_reports[1].jobs
        )
        _assert_jobs_bit_equal_to_oracle(stepping_network, report._jobs)

    def test_partitioned_node_receives_no_new_work(
        self, stepping_network, sample_pool
    ):
        images, _ = sample_pool
        faults = FaultSpec(events=(PartitionFault(node="n1", time=0.0, duration=1.0),))
        requests = _requests(images, count=6, gap=0.1)  # all inside the window
        report = _cluster(stepping_network, faults=faults).serve(requests)
        assert report.as_dict()["completed"] == 6
        assert report.node_reports[1].num_jobs == 0
        assert report.node_reports[0].num_jobs == 6

    def test_all_nodes_partitioned_holds_arrivals_until_heal(
        self, stepping_network, sample_pool
    ):
        images, _ = sample_pool
        faults = FaultSpec(
            events=(
                PartitionFault(node="n0", time=0.0, duration=0.5),
                PartitionFault(node="n1", time=0.0, duration=0.5),
            )
        )
        report = _cluster(stepping_network, faults=faults).serve(
            _requests(images, count=4, gap=0.0)
        )
        assert report.as_dict()["completed"] == 4
        assert report.lost == 0
        # Nothing could start before the partitions healed.
        starts = [job.steps[0].start_time for job in report._jobs]
        assert min(starts) >= 0.5

    def test_fault_tolerant_serve_is_deterministic(
        self, stepping_network, sample_pool
    ):
        images, _ = sample_pool
        faults = FaultSpec.random(
            ["n0", "n1"], horizon=1.0, seed=3,
            crash_rate=1.0, transient_rate=2.0, partition_rate=1.0,
        )
        first = _cluster(stepping_network, faults=faults).serve(
            _requests(images, count=8)
        )
        second = _cluster(stepping_network, faults=faults).serve(
            _requests(images, count=8)
        )
        # NaN-tolerant structural equality (NaN != NaN under ==).
        assert json.dumps(first.as_dict(), sort_keys=True) == json.dumps(
            second.as_dict(), sort_keys=True
        )


# ----------------------------------------------------------------------
# Retry scheduling respects hard deadlines
# ----------------------------------------------------------------------
class TestRetryDeadlineClamp:
    """A retry may never be scheduled at or past its request's deadline.

    Under deadline enforcement a retry event firing past the deadline
    could only discover the job dead at dispatch — so the coordinator
    clamps ``not_before`` to the deadline and finalises the best-so-far
    anytime answer immediately, both when the failover backoff
    overshoots and when the reachability horizon does.
    """

    def _deadlined(self, images, deadline):
        return [
            Request(
                request_id=0, arrival_time=0.0, inputs=images[0][None],
                deadline=deadline,
            )
        ]

    def test_backoff_overshoot_finalises_immediately(
        self, stepping_network, sample_pool
    ):
        images, _ = sample_pool
        # The in-flight job checkpoints at the crash; the 0.5 s backoff
        # would land the retry past the 0.3 s deadline, so the job is
        # finalised with its best-so-far step instead of waiting.
        faults = FaultSpec(
            events=(CrashFault(node="n0", time=0.15),),
            retry=RetryPolicy(kind="fixed", base_delay=0.5, max_delay=0.5),
        )
        recorder = ObservabilitySpec(enabled=True).build()
        try:
            report = _cluster(
                stepping_network, faults=faults, enforce_deadline=True
            ).serve(self._deadlined(images, 0.3), recorder=recorder)
        finally:
            recorder.close()
        job = report._jobs[0]
        assert job.status == "completed"
        assert job.stop_reason == "deadline reached during failover backoff"
        assert job.steps  # best-so-far anytime answer, not a drop
        finalizes = [e for e in recorder.events if e["type"] == "finalize"]
        assert finalizes and all(float(e["time"]) < 0.3 for e in finalizes)
        _assert_jobs_bit_equal_to_oracle(stepping_network, report._jobs)

    def test_reachability_horizon_past_deadline_finalises_immediately(
        self, stepping_network, sample_pool
    ):
        images, _ = sample_pool
        # The crash survivor is partitioned until long past the
        # deadline: the retry heap must not park the checkpoint on the
        # heal horizon.
        faults = FaultSpec(
            events=(
                CrashFault(node="n0", time=0.15),
                PartitionFault(node="n1", time=0.0, duration=1.0),
            ),
            retry=RetryPolicy(kind="fixed", base_delay=0.01, max_delay=0.01),
        )
        report = _cluster(
            stepping_network, faults=faults, enforce_deadline=True
        ).serve(self._deadlined(images, 0.3))
        job = report._jobs[0]
        assert job.status == "completed"
        assert job.stop_reason == "deadline reached before any node is reachable"
        assert job.steps

    def test_without_enforcement_the_retry_still_waits(
        self, stepping_network, sample_pool
    ):
        # The clamp is an enforcement feature: best-effort fleets keep
        # retrying past soft deadlines exactly as before.
        images, _ = sample_pool
        faults = FaultSpec(
            events=(CrashFault(node="n0", time=0.15),),
            retry=RetryPolicy(kind="fixed", base_delay=0.5, max_delay=0.5),
        )
        report = _cluster(stepping_network, faults=faults).serve(
            self._deadlined(images, 0.3)
        )
        job = report._jobs[0]
        assert job.status == "completed"
        assert job.retries > 0
        assert job.final_subnet == stepping_network.num_subnets - 1

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_chaos_never_fires_a_retry_past_the_deadline(
        self, stepping_network, sample_pool, seed
    ):
        images, _ = sample_pool
        faults = FaultSpec.random(
            ["n0", "n1", "n2"], horizon=1.5, seed=seed,
            crash_rate=1.2, recover_fraction=0.3, partition_rate=1.0,
            retry=RetryPolicy(base_delay=0.1, max_delay=0.4, max_retries=5),
        )
        requests = _requests(images, count=12, gap=0.04, deadline=0.5)
        engines = [
            _engine(stepping_network, enforce_deadline=True) for _ in range(3)
        ]
        cluster = ServingCluster(
            engines, names=["n0", "n1", "n2"], faults=faults
        )
        recorder = ObservabilitySpec(enabled=True).build()
        try:
            report = cluster.serve(requests, recorder=recorder)
        finally:
            recorder.close()
        deadlines = {r.request_id: r.deadline for r in requests}
        # The retry heap never parks a checkpoint past its request's
        # hard deadline: whenever the backoff or the reachability
        # horizon would overshoot, the coordinator finalises on the
        # spot.  Observable two ways: a horizon clamp fires at a retry
        # dispatch, which is itself always scheduled before the
        # deadline; and any clamp finalize is *terminal* — no failover
        # resume for that request ever follows it.
        clamped = [
            e for e in recorder.events
            if e["type"] == "finalize" and "deadline reached" in str(e.get("reason"))
        ]
        for event in clamped:
            if "reachable" in event["reason"]:
                assert float(event["time"]) < deadlines[event["request_id"]]
        for event in clamped:
            later = [
                e for e in recorder.events
                if e.get("request_id") == event["request_id"]
                and e["type"] in ("failover", "arrive", "admit")
                and float(e["time"]) >= float(event["time"])
            ]
            assert later == []
        # One record per request survives the chaos, as ever.
        ids = sorted(job.request.request_id for job in report._jobs)
        assert ids == list(range(12))
        _assert_jobs_bit_equal_to_oracle(stepping_network, report._jobs)


# ----------------------------------------------------------------------
# Admission control: degrade before reject
# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_tight_deadline_degrades_target_subnet(
        self, stepping_network, sample_pool
    ):
        images, _ = sample_pool
        # Full quality takes 0.4 s; a 0.15 s deadline only fits the
        # small subnets, so admission caps instead of rejecting.
        requests = _requests(images, count=3, gap=1.0, deadline=0.15)
        report = _cluster(
            stepping_network, num_nodes=1, admission="degrade",
            enforce_deadline=True,
        ).serve(requests)
        assert report.degraded_admissions == 3
        assert report.rejected == 0
        assert report.as_dict()["completed"] == 3
        for job in report._jobs:
            assert job.final_subnet < stepping_network.num_subnets - 1
            assert "admission-capped" in job.stop_reason

    def test_infeasible_deadline_rejects_with_record(
        self, stepping_network, sample_pool
    ):
        images, _ = sample_pool
        requests = _requests(images, count=2, gap=1.0, deadline=1e-9)
        report = _cluster(
            stepping_network, num_nodes=1, admission="degrade",
            enforce_deadline=True,
        ).serve(requests)
        assert report.rejected == 2
        assert report.num_jobs == 2  # rejected arrivals still get records
        assert all(job.status == "rejected" for job in report._jobs)
        assert all("admission control" in job.stop_reason for job in report._jobs)

    def test_memory_pressure_caps_to_minimum_subnet(
        self, stepping_network, sample_pool
    ):
        images, _ = sample_pool
        context = IncrementalInference(
            stepping_network, dtype=np.float32
        ).plan.state_nbytes(1)
        # Budget holds one context: a second simultaneous arrival would
        # thrash, so admission caps it to the mandatory level instead.
        report = _cluster(
            stepping_network, num_nodes=1, admission="degrade",
            memory_budget_bytes=int(context * 1.5),
        ).serve(_requests(images, count=2, gap=0.0))
        assert report.degraded_admissions == 1
        capped = [
            job for job in report._jobs
            if job.request.max_subnet == 0 and job.status == "completed"
        ]
        assert len(capped) == 1
        assert capped[0].final_subnet == 0
        _assert_jobs_bit_equal_to_oracle(stepping_network, report._jobs)


# ----------------------------------------------------------------------
# ClusterSpec integration
# ----------------------------------------------------------------------
class TestClusterSpecFaults:
    BASE = {
        "name": "chaos",
        "model": {"name": "tiny-cnn", "num_subnets": 4},
        "nodes": [{"name": "a", "platform": "mobile-soc"}],
    }

    def test_round_trip_with_faults_admission_and_count(self):
        data = dict(
            self.BASE,
            nodes=[{"name": "a", "platform": "mobile-soc", "count": 3}],
            admission="degrade",
            faults={
                "events": [
                    {"kind": "crash", "node": "a#1", "time": 0.5, "recover_time": 1.0}
                ],
                "retry": {"kind": "fixed", "base_delay": 0.01, "max_delay": 0.01},
            },
        )
        spec = ClusterSpec.from_dict(data)
        assert [node.node_name for node in spec.nodes] == ["a#0", "a#1", "a#2"]
        assert spec.admission == "degrade"
        assert spec.faults.retry.kind == "fixed"
        round_tripped = ClusterSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert round_tripped == spec

    def test_non_positive_node_count_rejected(self):
        data = dict(self.BASE, nodes=[{"platform": "mobile-soc", "count": 0}])
        with pytest.raises(ValueError, match="'count' must be a positive integer"):
            ClusterSpec.from_dict(data)
        data = dict(self.BASE, nodes=[{"platform": "mobile-soc", "count": True}])
        with pytest.raises(ValueError, match="'count' must be a positive integer"):
            ClusterSpec.from_dict(data)

    def test_unknown_registry_names_raise_value_error_with_choices(self):
        cases = [
            (dict(self.BASE, nodes=[{"platform": "mobile-soc", "scheduler": "sjf"}]),
             "unknown scheduler 'sjf'"),
            (dict(self.BASE, nodes=[{"platform": "mobile-soc",
                                     "eviction_policy": "random"}]),
             "unknown eviction policy 'random'"),
            (dict(self.BASE, router="quantum"), "unknown router 'quantum'"),
            (dict(self.BASE, admission="strict"), "unknown admission policy 'strict'"),
            (dict(self.BASE, faults={"retry": {"kind": "psychic"}}),
             "unknown retry policy 'psychic'"),
            (dict(self.BASE, faults={"events": [{"kind": "meteor", "node": "a",
                                                 "time": 0.0}]}),
             "unknown fault kind 'meteor'"),
        ]
        for data, message in cases:
            with pytest.raises(ValueError, match=message):
                ClusterSpec.from_dict(data)
            # Registry misses stay catchable as KeyError too (the
            # historical contract of the get_* helpers).
            with pytest.raises(KeyError):
                ClusterSpec.from_dict(data)

    def test_config_error_is_both_value_and_key_error(self):
        with pytest.raises(ConfigError) as excinfo:
            ClusterSpec.from_dict(dict(self.BASE, router="quantum"))
        assert isinstance(excinfo.value, ValueError)
        assert isinstance(excinfo.value, KeyError)
        # KeyError's repr-quoting is suppressed: the message stays plain.
        assert str(excinfo.value).startswith("unknown router")


# ----------------------------------------------------------------------
# Chaos fuzz: seeded fault schedules x serving modes
# ----------------------------------------------------------------------
def _chaos_cluster(network, mode, faults):
    """A 3-node fleet in the given serving mode under the chaos schedule.

    ``batched`` exercises crashes that land mid-shared-pass, ``continuous``
    crashes during refill catch-up, and ``memory`` makes eviction race
    failover (the budget fits ~2 contexts).
    """
    from repro.serving import BatchedSteppingBackend

    def engine():
        if mode == "batched":
            return ServingEngine(
                BatchedSteppingBackend(network, policy=_full_quality()),
                _constant_trace(network),
                "batch-aware",
                batch_policy="same-level",
                enforce_deadline=False,
            )
        if mode == "continuous":
            return ServingEngine(
                BatchedSteppingBackend(network, policy=_full_quality()),
                _constant_trace(network),
                "batch-aware",
                batch_policy="continuous",
                enforce_deadline=False,
            )
        assert mode == "memory"
        context = IncrementalInference(network, dtype=np.float32).plan.state_nbytes(1)
        return ServingEngine(
            SteppingBackend(network, policy=_full_quality()),
            _constant_trace(network),
            "edf",
            memory_budget_bytes=int(context * 2.5),
            eviction_policy="lru",
            enforce_deadline=False,
        )

    return ServingCluster(
        [engine() for _ in range(3)],
        names=["n0", "n1", "n2"],
        faults=faults,
    )


class TestChaosFuzz:
    @pytest.mark.parametrize("mode", ["batched", "continuous", "memory"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_completed_requests_bit_equal_under_chaos(
        self, stepping_network, sample_pool, mode, seed
    ):
        images, _ = sample_pool
        faults = FaultSpec.random(
            ["n0", "n1", "n2"],
            horizon=1.5,
            seed=seed,
            crash_rate=1.2,
            recover_fraction=0.5,
            transient_rate=1.5,
            slowdown_rate=0.5,
            partition_rate=0.8,
            retry=RetryPolicy(base_delay=0.005, max_delay=0.02, max_retries=5),
        )
        requests = _requests(images, count=18, gap=0.04)
        report = _chaos_cluster(stepping_network, mode, faults).serve(requests)

        # Exactly one record per request, fleet-wide.
        ids = sorted(job.request.request_id for job in report._jobs)
        assert ids == list(range(18))
        # spare_first leaves n0 alive throughout, and partitions always
        # heal: nothing may be lost outright.
        assert report.lost == 0
        # Every completed request — including best-effort failover
        # finalisations — is bit-identical to solo incremental inference
        # over its executed level sequence, at every step.
        _assert_jobs_bit_equal_to_oracle(stepping_network, report._jobs)
        # Two serves of the same schedule agree exactly.
        again = _chaos_cluster(stepping_network, mode, faults).serve(
            _requests(images, count=18, gap=0.04)
        )
        assert json.dumps(report.as_dict(), sort_keys=True) == json.dumps(
            again.as_dict(), sort_keys=True
        )

    def test_chaos_macs_charged_exactly(self, stepping_network, sample_pool):
        """Fault-run MACs decompose as useful work + honest recompute."""
        images, _ = sample_pool
        faults = FaultSpec.random(
            ["n0", "n1", "n2"], horizon=1.5, seed=2,
            crash_rate=1.0, recover_fraction=0.5,
            retry=RetryPolicy(max_retries=5),
        )
        requests = _requests(images, count=18, gap=0.04)
        report = _chaos_cluster(stepping_network, "memory", faults).serve(requests)
        per_level = [float(stepping_network.subnet_macs(0))] + [
            float(stepping_network.subnet_macs(level))
            - float(stepping_network.subnet_macs(level - 1))
            for level in range(1, stepping_network.num_subnets)
        ]
        expected = sum(
            per_level[step.subnet] for job in report._jobs for step in job.steps
        )
        assert report.total_macs - report.total_macs_recomputed == pytest.approx(
            expected
        )
