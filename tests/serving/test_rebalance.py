"""Rebalancing tests: work-stealing, batch sharding and load-signal fixes.

The headline invariant extends the chaos suite's to *proactive* moves:
for any steal schedule, every request completes with logits
bit-identical to solo incremental inference over its executed level
sequence — stealing relocates requests (and, opted in, subnet-level
checkpoints over the bit-exact replay path), never partial numerics —
and the recompute MACs a stolen in-flight job pays are charged exactly.
Alongside it, the fluid-model regressions this PR fixes: a node's
analytic load signals must match a fresh model that never saw departed
work, and `batch_potential` must not over-report coalescing on a node
whose queue has already left the entry edge.
"""

import json

import numpy as np
import pytest

from repro.core.incremental import IncrementalInference
from repro.runtime.platform import ResourceTrace
from repro.runtime.policies import ConfidencePolicy
from repro.serving import (
    ROUTERS,
    ClusterSpec,
    FaultSpec,
    NodeState,
    PartitionFault,
    PowerOfTwoChoicesRouter,
    RebalanceSpec,
    Request,
    ServingCluster,
    ServingEngine,
    SteppingBackend,
    gather_shard_logits,
    get_router,
    shard_requests,
    steal_plan,
)
from repro.serving.observe import ObservabilitySpec
from repro.serving.analyze import PHASES, decompose_latency
from repro.utils.errors import ConfigError


def _full_quality():
    return ConfidencePolicy(threshold=1.0, respect_deadline=False)


def _constant_trace(network, seconds_for_largest=0.4):
    largest = float(network.subnet_macs(network.num_subnets - 1))
    return ResourceTrace.constant(largest / seconds_for_largest, name="constant")


def _engine(network, scheduler="fifo", **kwargs):
    kwargs.setdefault("enforce_deadline", False)
    return ServingEngine(
        SteppingBackend(network, policy=_full_quality()),
        _constant_trace(network),
        scheduler,
        **kwargs,
    )


def _requests(images, count, gap=0.05, deadline=None, batch_size=1):
    return [
        Request(
            request_id=index,
            arrival_time=index * gap,
            inputs=np.stack(
                [images[(index + offset) % len(images)] for offset in range(batch_size)]
            ),
            deadline=None if deadline is None else index * gap + deadline,
        )
        for index in range(count)
    ]


def _oracle_steps(network, job):
    """Solo incremental inference over the job's executed level sequence."""
    oracle = IncrementalInference(network, dtype=np.float32)
    results = [oracle.run(job.request.inputs, subnet=job.steps[0].subnet)]
    for step in job.steps[1:]:
        results.append(oracle.step_to(step.subnet))
    return results


def _assert_jobs_bit_equal_to_oracle(network, jobs):
    for job in jobs:
        if job.status != "completed" or not job.steps:
            continue
        reference = _oracle_steps(network, job)
        for step, ref in zip(job.steps, reference):
            assert step.subnet == ref.subnet
            assert np.array_equal(step.logits, ref.logits)
        assert np.array_equal(job.final_logits, reference[-1].logits)


# ----------------------------------------------------------------------
# RebalanceSpec serialisation and validation
# ----------------------------------------------------------------------
class TestRebalanceSpec:
    def test_json_round_trip(self):
        spec = RebalanceSpec(
            enabled=True,
            interval=0.05,
            imbalance_ratio=1.5,
            starvation_depth=1,
            max_steals=2,
            steal_in_flight=True,
            shard_max_batch=4,
        )
        payload = json.loads(json.dumps(spec.to_dict()))
        assert RebalanceSpec.from_dict(payload) == spec
        assert RebalanceSpec.from_json(json.dumps(spec.to_dict())) == spec

    def test_defaults_are_disabled(self):
        spec = RebalanceSpec()
        assert not spec.enabled
        assert spec.shard_max_batch is None

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"enabled": 1}, "enabled must be a bool"),
            ({"interval": -0.1}, "interval"),
            ({"interval": float("inf")}, "interval"),
            ({"imbalance_ratio": 0.5}, "imbalance_ratio"),
            ({"starvation_depth": -1}, "starvation_depth"),
            ({"starvation_depth": True}, "starvation_depth"),
            ({"max_steals": 0}, "max_steals"),
            ({"steal_in_flight": "yes"}, "steal_in_flight"),
            ({"shard_max_batch": 0}, "shard_max_batch"),
        ],
    )
    def test_invalid_values_rejected(self, kwargs, match):
        with pytest.raises(ConfigError, match=match):
            RebalanceSpec(**kwargs)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown RebalanceSpec keys"):
            RebalanceSpec.from_dict({"enabled": True, "aggression": 11})

    def test_cluster_spec_round_trip_and_coercion(self):
        data = {
            "model": {"name": "tiny-cnn", "num_subnets": 4},
            "nodes": [{"platform": "mobile-soc"}, {"platform": "mobile-soc"}],
            "rebalance": {"enabled": True, "interval": 0.1, "max_steals": 2},
        }
        spec = ClusterSpec.from_dict(data)
        assert isinstance(spec.rebalance, RebalanceSpec)
        assert spec.rebalance.interval == pytest.approx(0.1)
        round_tripped = ClusterSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert round_tripped == spec
        # Absent stays absent (and serialises as null).
        plain = ClusterSpec.from_dict({k: v for k, v in data.items() if k != "rebalance"})
        assert plain.rebalance is None
        assert plain.to_dict()["rebalance"] is None

    def test_enabled_without_any_interval_rejected(self, stepping_network):
        engines = [_engine(stepping_network) for _ in range(2)]
        with pytest.raises(ConfigError, match="positive rebalance.interval"):
            ServingCluster(engines, rebalance={"enabled": True, "interval": 0.0})
        # A positive cluster publish interval is an acceptable fallback tick.
        ServingCluster(
            [_engine(stepping_network) for _ in range(2)],
            publish_interval=0.05,
            rebalance={"enabled": True, "interval": 0.0},
        )


# ----------------------------------------------------------------------
# The pure trigger
# ----------------------------------------------------------------------
class TestStealPlan:
    SPEC = RebalanceSpec(enabled=True, interval=0.1, imbalance_ratio=2.0, max_steals=4)

    def test_balanced_fleet_is_left_alone(self):
        assert steal_plan([3, 3, 3], self.SPEC) is None
        assert steal_plan([4, 3], self.SPEC) is None  # gap below 2
        assert steal_plan([5], self.SPEC) is None  # nothing to steal from

    def test_ratio_trigger_names_deepest_victim(self):
        assert steal_plan([10, 1, 1], self.SPEC) == (0, 4)
        assert steal_plan([1, 10, 1], self.SPEC) == (1, 4)

    def test_count_never_exceeds_half_the_gap(self):
        assert steal_plan([5, 1], self.SPEC) == (0, 2)
        assert steal_plan([4, 1], self.SPEC) == (0, 1)
        capped = RebalanceSpec(enabled=True, interval=0.1, max_steals=1)
        assert steal_plan([10, 0], capped) == (0, 1)

    def test_ratio_floors_shallow_depth_at_one(self):
        # An idle node must not make every imbalance infinite-ratio;
        # depth 2 vs 0 still fires because 2 >= 2.0 * max(1, 0).
        assert steal_plan([2, 0], self.SPEC) == (0, 1)

    def test_starvation_trigger_fires_below_the_ratio(self):
        spec = RebalanceSpec(
            enabled=True, interval=0.1, imbalance_ratio=10.0, starvation_depth=1
        )
        assert steal_plan([4, 1], spec) == (0, 1)
        # Above the watermark the starved trigger stays quiet.
        assert steal_plan([4, 2], spec) is None

    def test_depth_ties_break_on_position(self):
        assert steal_plan([6, 6, 0], self.SPEC) == (0, 3)


# ----------------------------------------------------------------------
# Power-of-two-choices routing
# ----------------------------------------------------------------------
class TestPowerOfTwoChoices:
    def test_registered_under_both_names(self):
        assert ROUTERS["power-of-two-choices"] is PowerOfTwoChoicesRouter
        assert ROUTERS["p2c"] is PowerOfTwoChoicesRouter
        assert isinstance(get_router("p2c"), PowerOfTwoChoicesRouter)
        assert PowerOfTwoChoicesRouter.uses_queue_depth

    def test_cluster_spec_accepts_the_name(self):
        spec = ClusterSpec.from_dict(
            {
                "model": {"name": "tiny-cnn", "num_subnets": 4},
                "nodes": [{"platform": "mobile-soc"}, {"platform": "mobile-soc"}],
                "router": "power-of-two-choices",
            }
        )
        assert spec.router == "power-of-two-choices"

    def _nodes(self, network, depths):
        nodes = []
        for index, depth in enumerate(depths):
            node = NodeState(index, f"n{index}", _engine(network))
            for i in range(depth):
                node.assign(
                    Request(request_id=index * 100 + i, arrival_time=0.0,
                            inputs=np.zeros((1, 3, 12, 12), dtype=np.float32))
                )
            nodes.append(node)
        return nodes

    def test_always_avoids_the_lone_deep_node(self, stepping_network):
        nodes = self._nodes(stepping_network, [5, 0, 0])
        router = PowerOfTwoChoicesRouter(seed=0)
        router.reset(nodes)
        request = Request(request_id=999, arrival_time=0.0,
                          inputs=np.zeros((1, 3, 12, 12), dtype=np.float32))
        # Every sampled pair contains at least one empty node, which
        # always wins the depth comparison against depth 5.
        for _ in range(32):
            assert router.route(request, nodes, now=0.0) != 0

    def test_seeded_sampling_is_reproducible_across_resets(self, stepping_network):
        nodes = self._nodes(stepping_network, [2, 2, 2, 2])
        request = Request(request_id=999, arrival_time=0.0,
                          inputs=np.zeros((1, 3, 12, 12), dtype=np.float32))
        router = PowerOfTwoChoicesRouter(seed=7)
        router.reset(nodes)
        first = [router.route(request, nodes, now=0.0) for _ in range(16)]
        router.reset(nodes)
        second = [router.route(request, nodes, now=0.0) for _ in range(16)]
        assert first == second
        assert len(set(first)) > 1  # it genuinely samples

    def test_single_node_short_circuits(self, stepping_network):
        nodes = self._nodes(stepping_network, [3])
        router = PowerOfTwoChoicesRouter()
        router.reset(nodes)
        request = Request(request_id=999, arrival_time=0.0,
                          inputs=np.zeros((1, 3, 12, 12), dtype=np.float32))
        assert router.route(request, nodes, now=0.0) == 0


# ----------------------------------------------------------------------
# Fluid-model load signals: retract and the entry-edge fallback
# ----------------------------------------------------------------------
class TestFluidModelRetract:
    def _request(self, rid, arrival=0.0):
        return Request(request_id=rid, arrival_time=arrival,
                       inputs=np.zeros((1, 3, 12, 12), dtype=np.float32))

    def test_retract_matches_fresh_model_oracle(self, stepping_network):
        node = NodeState(0, "a", _engine(stepping_network))
        for rid in range(5):
            node.assign(self._request(rid, arrival=rid * 0.1))
        assert node.retract(2)
        assert node.retract(4)

        oracle = NodeState(0, "a", _engine(stepping_network))
        for rid in (0, 1, 3):
            oracle.assign(self._request(rid, arrival=rid * 0.1))

        assert [r.request_id for r in node.assigned] == [0, 1, 3]
        assert node._starts == oracle._starts
        assert node._completions == oracle._completions
        assert node._resident == oracle._resident
        assert node._busy_until == oracle._busy_until
        for now in (0.0, 0.15, 0.5, 2.0, 10.0):
            assert node.queue_length(now) == oracle.queue_length(now)
            assert node.backlog_seconds(now) == oracle.backlog_seconds(now)
            assert node.batch_potential(now) == oracle.batch_potential(now)
            assert node.resident_bytes(now) == oracle.resident_bytes(now)
            assert node.predicted_finish(1e6, now) == oracle.predicted_finish(1e6, now)

    def test_retract_removes_last_duplicate_placement(self, stepping_network):
        # A request re-placed after failover can visit the same node
        # twice; only its latest placement is forgotten.
        node = NodeState(0, "a", _engine(stepping_network))
        for rid in (0, 1, 0):
            node.assign(self._request(rid))
        assert node.retract(0)
        assert [r.request_id for r in node.assigned] == [0, 1]
        assert not node.retract(7)  # unknown id reports, not raises
        assert node.queue_length(0.0) == 2

    def test_crash_frees_the_victims_fluid_signals(
        self, stepping_network, sample_pool
    ):
        """Post-crash, a recovered node's advertised load is fresh.

        Without retraction the fluid model keeps charging the crashed
        node for every migrated job, so analytic routing signals report
        a deep queue on a node that is actually empty.  The publish
        trace records the fluid depth each consult reads.
        """
        images, _ = sample_pool
        faults = FaultSpec(
            events=({"kind": "crash", "node": "n1", "time": 0.05,
                     "recover_time": 0.5},)
        )
        engines = [_engine(stepping_network) for _ in range(2)]
        cluster = ServingCluster(
            engines, router="least-loaded", names=["n0", "n1"], faults=faults
        )
        burst = _requests(images, count=6, gap=0.0)
        late = [
            Request(request_id=6 + i, arrival_time=0.6 + i * 0.05,
                    inputs=images[i][None])
            for i in range(2)
        ]
        recorder = ObservabilitySpec(enabled=True).build()
        try:
            report = cluster.serve(burst + late, recorder=recorder)
        finally:
            recorder.close()
        assert report.as_dict()["completed"] == 8
        assert report.migrations > 0
        # The first routing consult after recovery sees n1 with an
        # empty fluid model — the fresh-model oracle for a node whose
        # every pre-crash job departed.
        post = [
            e for e in recorder.events
            if e["type"] == "publish" and e.get("node") == "n1"
            and float(e["time"]) >= 0.5
        ]
        assert post
        assert post[0]["fluid_depth"] == 0


class TestBatchPotentialFallback:
    def test_analytic_fallback_counts_entry_edge_only(self, stepping_network):
        # One request, arrival 0: its predicted first pass starts
        # immediately, so moments later it is mid-ladder — no coalescing
        # opportunity — while jobs-in-system still reports 1.
        node = NodeState(0, "a", _engine(stepping_network))
        node.assign(Request(request_id=0, arrival_time=0.0,
                            inputs=np.zeros((1, 3, 12, 12), dtype=np.float32)))
        assert node.queue_length(0.05) == 1
        assert node.batch_potential(0.05) == 0
        # Before the predicted start the entry pass is still shareable.
        assert node.batch_potential(-0.01) == 1

    def test_analytic_matches_live_on_a_drained_node(
        self, stepping_network, sample_pool
    ):
        images, _ = sample_pool
        engine = _engine(stepping_network)
        node = NodeState(0, "a", engine)
        request = Request(request_id=0, arrival_time=0.0, inputs=images[0][None])
        node.assign(request, push=False)
        run = engine.open_run(node="a")
        run.push(request)
        run.run_until(10.0)
        # Live signal on the drained node: nothing waits at the entry edge.
        node.attach_run(run)
        assert node.batch_potential(10.0) == run.entry_edge_depth == 0
        # The analytic fallback agrees once the run detaches — the
        # pre-fix queue_length fallback would still answer 1 here only
        # after the predicted completion; pin the entry-edge semantics
        # at a mid-service instant instead.
        node.run = None
        mid = (node._starts[0] + node._completions[0]) / 2.0
        assert node.queue_length(mid) == 1
        assert node.batch_potential(mid) == 0
        run.finish()


# ----------------------------------------------------------------------
# Engine-level steal
# ----------------------------------------------------------------------
class TestServingRunSteal:
    def test_steal_moves_newest_unstarted_jobs_bit_exact(
        self, stepping_network, sample_pool
    ):
        images, _ = sample_pool
        requests = _requests(images, count=4, gap=0.0)
        baseline = _engine(stepping_network).serve(_requests(images, count=4, gap=0.0))

        victim_engine = _engine(stepping_network)
        victim = victim_engine.open_run(node="victim")
        for request in requests:
            victim.push(request)
        victim.run_until(0.1)  # the first job starts; three still queued
        work = victim.steal(2, 0.1)
        assert [r.request_id for r in work.unstarted] == [3, 2]  # newest first
        assert work.interrupted == []

        thief_engine = _engine(stepping_network)
        thief = thief_engine.open_run(node="thief")
        for request in sorted(work.unstarted, key=lambda r: r.request_id):
            thief.push(request, not_before=0.1)
        victim_report = victim.finish()
        thief_report = thief.finish()
        assert sorted(j.request.request_id for j in victim_report.jobs) == [0, 1]
        assert sorted(j.request.request_id for j in thief_report.jobs) == [2, 3]
        by_id = {j.request.request_id: j for j in baseline.jobs}
        for job in list(victim_report.jobs) + list(thief_report.jobs):
            assert np.array_equal(
                job.final_logits, by_id[job.request.request_id].final_logits
            )

    def test_steal_zero_or_from_crashed_run(self, stepping_network, sample_pool):
        images, _ = sample_pool
        run = _engine(stepping_network).open_run(node="n")
        run.push(_requests(images, count=1)[0])
        empty = run.steal(0, 0.0)
        assert empty.unstarted == [] and empty.interrupted == []
        run.crash(0.0)
        with pytest.raises(RuntimeError, match="already crashed"):
            run.steal(1, 0.0)


# ----------------------------------------------------------------------
# Cluster-level stealing: the fuzz grid
# ----------------------------------------------------------------------
def _steal_cluster(network, mode, rebalance, scheduler="fifo"):
    """A 3-node fleet under a one-hot-node skew: every burst arrival
    lands on n0 while n1/n2 sit partitioned, then the partitions heal
    and only the rebalance tick can move the backlog."""
    from repro.serving import BatchedSteppingBackend

    def engine():
        if mode in ("batched", "continuous"):
            return ServingEngine(
                BatchedSteppingBackend(network, policy=_full_quality()),
                _constant_trace(network),
                "batch-aware",
                batch_policy="same-level" if mode == "batched" else "continuous",
                enforce_deadline=False,
            )
        return _engine(network, scheduler=scheduler)

    faults = FaultSpec(
        events=(
            PartitionFault(node="n1", time=0.0, duration=0.2),
            PartitionFault(node="n2", time=0.0, duration=0.2),
        )
    )
    return ServingCluster(
        [engine() for _ in range(3)],
        names=["n0", "n1", "n2"],
        faults=faults,
        rebalance=rebalance,
    )


STEAL_CONFIGS = [
    {"enabled": True, "interval": 0.05, "imbalance_ratio": 1.5, "max_steals": 4},
    {"enabled": True, "interval": 0.05, "imbalance_ratio": 8.0,
     "starvation_depth": 0, "max_steals": 2},
    {"enabled": True, "interval": 0.03, "imbalance_ratio": 2.0, "max_steals": 3,
     "steal_in_flight": True},
]


class TestStealFuzz:
    @pytest.mark.parametrize("mode", ["stepping", "batched", "continuous"])
    @pytest.mark.parametrize("config", STEAL_CONFIGS)
    def test_stolen_work_stays_bit_equal_and_partitions_the_workload(
        self, stepping_network, sample_pool, mode, config
    ):
        images, _ = sample_pool
        count = 10
        report = _steal_cluster(stepping_network, mode, config).serve(
            _requests(images, count=count, gap=0.0)
        )
        # The engineered skew forces the trigger for every config.
        assert report.steals > 0
        assert report.as_dict()["completed"] == count
        assert report.lost == 0 and report.rejected == 0
        # Steals partition the workload: every request has exactly one
        # record fleet-wide, and the thieves really carry stolen jobs.
        ids = sorted(job.request.request_id for job in report._jobs)
        assert ids == list(range(count))
        off_victim = sum(r.num_jobs for r in report.node_reports[1:])
        assert off_victim >= min(report.steals, 1)
        # Bit-equality: stolen or not, every completed request matches
        # solo incremental inference over its executed level sequence.
        _assert_jobs_bit_equal_to_oracle(stepping_network, report._jobs)
        # MACs are charged honestly: useful work plus declared recompute.
        per_level = [float(stepping_network.subnet_macs(0))] + [
            float(stepping_network.subnet_macs(level))
            - float(stepping_network.subnet_macs(level - 1))
            for level in range(1, stepping_network.num_subnets)
        ]
        expected = sum(
            per_level[step.subnet] for job in report._jobs for step in job.steps
        )
        assert report.total_macs - report.total_macs_recomputed == pytest.approx(
            expected
        )
        if not config.get("steal_in_flight"):
            assert report.inflight_steals == 0
            assert report.total_macs_recomputed == 0

    @pytest.mark.parametrize("scheduler", ["fifo", "edf", "priority"])
    def test_steal_is_deterministic_across_schedulers(
        self, stepping_network, sample_pool, scheduler
    ):
        images, _ = sample_pool
        config = {"enabled": True, "interval": 0.05, "imbalance_ratio": 1.5,
                  "max_steals": 4, "steal_in_flight": True}
        first = _steal_cluster(stepping_network, "stepping", config,
                               scheduler=scheduler).serve(
            _requests(images, count=10, gap=0.0)
        )
        second = _steal_cluster(stepping_network, "stepping", config,
                                scheduler=scheduler).serve(
            _requests(images, count=10, gap=0.0)
        )
        assert first.steals > 0
        assert json.dumps(first.as_dict(), sort_keys=True) == json.dumps(
            second.as_dict(), sort_keys=True
        )

    def test_stealing_improves_load_imbalance(self, stepping_network, sample_pool):
        images, _ = sample_pool
        config = {"enabled": True, "interval": 0.05, "imbalance_ratio": 1.5,
                  "max_steals": 4}
        control = _steal_cluster(stepping_network, "stepping", None).serve(
            _requests(images, count=10, gap=0.0)
        )
        rebalanced = _steal_cluster(stepping_network, "stepping", config).serve(
            _requests(images, count=10, gap=0.0)
        )
        assert control.steals == 0
        assert rebalanced.steals > 0
        assert rebalanced.load_imbalance < control.load_imbalance

    def test_steal_events_and_rebalance_hold_decompose_exactly(
        self, stepping_network, sample_pool
    ):
        images, _ = sample_pool
        config = {"enabled": True, "interval": 0.05, "imbalance_ratio": 1.5,
                  "max_steals": 4, "steal_in_flight": True}
        recorder = ObservabilitySpec(enabled=True).build()
        try:
            report = _steal_cluster(stepping_network, "stepping", config).serve(
                _requests(images, count=10, gap=0.0), recorder=recorder
            )
        finally:
            recorder.close()
        steal_events = [e for e in recorder.events if e["type"] == "steal"]
        assert len(steal_events) == report.steals
        for event in steal_events:
            assert event["node"] == "n0"
            assert isinstance(event["inflight"], bool)
        decompositions = decompose_latency(recorder.events)
        assert len(decompositions) == 10
        assert "rebalance_hold" in PHASES
        for dec in decompositions:
            assert set(dec.phases) == set(PHASES)
            assert sum(dec.phases.values()) == pytest.approx(
                dec.finish - dec.arrival, abs=1e-9
            )
            assert dec.phases["rebalance_hold"] >= 0.0


# ----------------------------------------------------------------------
# Batch sharding
# ----------------------------------------------------------------------
class TestShardRequests:
    def test_shards_are_slice_views_with_fresh_ids(self, sample_pool):
        images, _ = sample_pool
        requests = [
            Request(request_id=0, arrival_time=0.0, inputs=images[:10],
                    labels=np.arange(10)),
            Request(request_id=1, arrival_time=0.1, inputs=images[:2]),
        ]
        sharded, groups = shard_requests(requests, 4)
        assert groups == {0: (2, 3, 4)}
        assert [r.request_id for r in sharded] == [2, 3, 4, 1]
        assert sharded[3] is requests[1]  # small batches pass untouched
        for position, shard in enumerate(sharded[:3]):
            start = position * 4
            stop = min(start + 4, 10)
            assert shard.batch_size == stop - start
            assert np.shares_memory(shard.inputs, requests[0].inputs)
            assert np.array_equal(shard.inputs, images[start:stop])
            assert np.array_equal(shard.labels, np.arange(start, stop))
            assert shard.arrival_time == requests[0].arrival_time

    def test_gather_concatenates_in_slice_order(self):
        class FakeJob:
            def __init__(self, logits):
                self.final_logits = logits

        jobs = {
            2: FakeJob(np.array([[1.0], [2.0]])),
            3: FakeJob(np.array([[3.0]])),
            4: FakeJob(None),
        }
        gathered = gather_shard_logits(jobs, {0: (2, 3), 1: (2, 4), 5: (9,)})
        assert np.array_equal(gathered[0], np.array([[1.0], [2.0], [3.0]]))
        assert gathered[1] is None  # a shard without final logits
        assert gathered[5] is None  # a shard without a record at all

    def test_invalid_max_batch_rejected(self):
        with pytest.raises(ConfigError, match="shard_max_batch"):
            shard_requests([], 0)

    def test_cluster_shards_and_gathers_bit_equal(
        self, stepping_network, sample_pool
    ):
        images, _ = sample_pool
        big = Request(request_id=0, arrival_time=0.0, inputs=images[:6])
        small = Request(request_id=1, arrival_time=0.0, inputs=images[6][None])
        cluster = ServingCluster(
            [_engine(stepping_network) for _ in range(2)],
            names=["n0", "n1"],
            rebalance={"shard_max_batch": 2},
        )
        recorder = ObservabilitySpec(enabled=True).build()
        try:
            report = cluster.serve([big, small], recorder=recorder)
        finally:
            recorder.close()
        assert report.shards == 3
        assert set(report.shard_groups) == {0}
        assert len(report.shard_groups[0]) == 3
        assert report.num_jobs == 4  # three shards plus the small request
        shard_events = [e for e in recorder.events if e["type"] == "shard"]
        assert len(shard_events) == 1
        assert shard_events[0]["request_id"] == 0
        assert tuple(shard_events[0]["shards"]) == report.shard_groups[0]
        # Each shard is bit-equal to solo serving of that shard, and the
        # gather stacks them back in slice order.
        _assert_jobs_bit_equal_to_oracle(stepping_network, report._jobs)
        gathered = report.gathered_logits()
        jobs_by_id = {job.request.request_id: job for job in report._jobs}
        parts = [jobs_by_id[sid].final_logits for sid in report.shard_groups[0]]
        assert gathered[0].shape[0] == 6
        assert np.array_equal(gathered[0], np.concatenate(parts, axis=0))
        assert report.as_dict()["shard_groups"] == {
            "0": list(report.shard_groups[0])
        }

    def test_sharding_composes_with_stealing(self, stepping_network, sample_pool):
        images, _ = sample_pool
        config = {"enabled": True, "interval": 0.05, "imbalance_ratio": 1.5,
                  "max_steals": 4, "shard_max_batch": 2}
        cluster = _steal_cluster(stepping_network, "stepping", config)
        requests = [
            Request(request_id=index, arrival_time=0.0, inputs=images[:4])
            for index in range(4)
        ]
        report = cluster.serve(requests)
        assert report.shards == 8  # four parents, two shards each
        assert report.steals > 0
        assert report.as_dict()["completed"] == 8
        gathered = report.gathered_logits()
        assert set(gathered) == {0, 1, 2, 3}
        for parent_id, logits in gathered.items():
            assert logits.shape[0] == 4
        _assert_jobs_bit_equal_to_oracle(stepping_network, report._jobs)
