"""Tests for the ClusterSpec grid-sweep harness (`repro.serving.sweep`)."""

import json
from pathlib import Path

import pytest

from repro.serving import ClusterSpec, SLOSpec, SweepSpec, run_sweep
from repro.serving.sweep import apply_overrides
from repro.utils.errors import ConfigError

CONFIG_DIR = Path(__file__).resolve().parents[2] / "benchmarks" / "configs"


@pytest.fixture(scope="module")
def base_spec():
    return ClusterSpec.from_json(CONFIG_DIR / "cluster_sweep.json")


# ----------------------------------------------------------------------
# Override application
# ----------------------------------------------------------------------
class TestApplyOverrides:
    def test_top_level_scalar(self, base_spec):
        spec = apply_overrides(base_spec, {"publish_interval": 0.01})
        assert spec.publish_interval == 0.01
        assert base_spec.publish_interval == 0.0  # base untouched

    def test_wildcard_fans_over_nodes(self, base_spec):
        spec = apply_overrides(base_spec, {"nodes.*.batch_policy": "none"})
        assert all(node.batch_policy == "none" for node in spec.nodes)

    def test_integer_index_into_list(self, base_spec):
        spec = apply_overrides(base_spec, {"streams.0.params.rate": 123.0})
        assert spec.streams[0].params["rate"] == 123.0

    def test_missing_intermediate_key_rejected(self, base_spec):
        with pytest.raises(ConfigError, match="no_such"):
            apply_overrides(base_spec, {"no_such.thing": 1})

    def test_wildcard_on_non_list_rejected(self, base_spec):
        with pytest.raises(ConfigError, match=r"\*"):
            apply_overrides(base_spec, {"model.*.levels": 2})

    def test_final_wildcard_rejected(self, base_spec):
        with pytest.raises(ConfigError, match=r"\*"):
            apply_overrides(base_spec, {"nodes.*": {}})

    def test_index_out_of_range_rejected(self, base_spec):
        with pytest.raises(ConfigError, match="99"):
            apply_overrides(base_spec, {"nodes.99.batch_policy": "none"})

    def test_result_is_revalidated(self, base_spec):
        # A structurally fine path whose value breaks spec validation
        # must be caught by ClusterSpec.from_dict, not silently accepted.
        with pytest.raises(ConfigError):
            apply_overrides(base_spec, {"publish_interval": -1.0})


# ----------------------------------------------------------------------
# Grid expansion and spec round-trips
# ----------------------------------------------------------------------
class TestSweepSpec:
    def test_cell_count_and_order(self, base_spec):
        sweep = SweepSpec(
            base=base_spec,
            grid={"publish_interval": (0.0, 0.01), "router": ("round-robin", "edf")},
        )
        assert sweep.num_cells == 4
        cells = list(sweep.cells())
        # First axis varies slowest.
        assert [cell["publish_interval"] for cell in cells] == [0.0, 0.0, 0.01, 0.01]
        assert [cell["router"] for cell in cells] == ["round-robin", "edf"] * 2

    def test_empty_grid_is_one_baseline_cell(self, base_spec):
        sweep = SweepSpec(base=base_spec, grid={})
        assert sweep.num_cells == 1
        assert list(sweep.cells()) == [{}]

    def test_empty_axis_rejected(self, base_spec):
        with pytest.raises(ConfigError, match="no values"):
            SweepSpec(base=base_spec, grid={"router": ()})

    def test_non_sequence_axis_rejected(self, base_spec):
        with pytest.raises(ConfigError, match="sequence"):
            SweepSpec(base=base_spec, grid={"router": "round-robin"})

    def test_bad_axis_path_rejected_at_construction(self, base_spec):
        with pytest.raises(ConfigError, match="typo_field"):
            SweepSpec(base=base_spec, grid={"typo_field": (1, 2)})

    def test_json_round_trip(self, base_spec):
        sweep = SweepSpec(
            base=base_spec,
            grid={"publish_interval": (0.0, 0.02)},
            name="round-trip",
            slo=SLOSpec(max_p99_latency=1.0),
        )
        recovered = SweepSpec.from_dict(json.loads(json.dumps(sweep.to_dict())))
        assert recovered.name == sweep.name
        assert recovered.slo == sweep.slo
        assert recovered.num_cells == sweep.num_cells
        assert list(recovered.cells()) == list(sweep.cells())
        assert recovered.to_dict() == sweep.to_dict()


# ----------------------------------------------------------------------
# Running sweeps
# ----------------------------------------------------------------------
class TestRunSweep:
    @pytest.fixture(scope="class")
    def result(self, base_spec):
        sweep = SweepSpec(
            base=base_spec,
            grid={"publish_interval": (0.0, 0.02)},
            name="tiny",
        )
        return run_sweep(sweep, base_spec.build_network())

    def test_one_row_per_cell_in_order(self, result):
        assert len(result.rows) == 2
        assert [row["cell"] for row in result.rows] == [0, 1]
        assert result.rows[0]["overrides"] == {"publish_interval": 0.0}
        assert result.rows[1]["overrides"] == {"publish_interval": 0.02}

    def test_rows_carry_metrics_decomposition_scorecard(self, result):
        for row in result.rows:
            assert row["metrics"]["completed"] > 0
            assert row["num_events"] > 0
            decomposition = row["decomposition"]
            assert decomposition["num_requests"] == row["metrics"]["num_jobs"]
            assert sum(decomposition["phase_fractions"].values()) == pytest.approx(1.0)
            # The base spec carries its own SLO.
            assert row["scorecard"]["slo"]["name"] == "sweep-slo"

    def test_staleness_tracks_the_publish_knob(self, result):
        live, stale = result.column("staleness.mean_abs_published_error")
        assert live == 0.0
        assert stale > 0.0

    def test_ok_reflects_scorecards(self, result):
        assert result.ok == all(row["scorecard"]["ok"] for row in result.rows)

    def test_deterministic(self, base_spec, result):
        sweep = SweepSpec(
            base=base_spec, grid={"publish_interval": (0.0, 0.02)}, name="tiny"
        )
        again = run_sweep(sweep, base_spec.build_network())
        assert json.dumps(again.to_dict(), sort_keys=True) == json.dumps(
            result.to_dict(), sort_keys=True
        )

    def test_to_dict_is_strict_json(self, result):
        json.dumps(result.to_dict(), allow_nan=False)

    def test_explicit_slo_overrides_base(self, base_spec):
        sweep = SweepSpec(base=base_spec, grid={}, name="slo-override")
        impossible = SLOSpec(name="impossible", max_p99_latency=1e-12)
        result = run_sweep(sweep, base_spec.build_network(), slo=impossible)
        assert result.rows[0]["scorecard"]["slo"]["name"] == "impossible"
        assert not result.ok
