"""Property tests for the bounded resident-context memory budget.

The load-bearing invariant of :mod:`repro.serving.memory` — and the
headline test here — is *bit-equality*: for any budget large enough to
hold one running context, every request's per-step and final logits
under eviction are identical to the unbounded run across eviction
policies, backends (solo stepping and shared-plan batched) and dtypes.
Eviction may only trade latency and MAC counts for memory, never
answers.

Alongside it, seeded randomized fuzz pins down the operational
guarantees: the resident budget is never exceeded between events, the
job that just ran is never evicted while any colder context remains,
recompute MACs are charged exactly (``bounded total == unbounded total +
recomputed``), and an evicted batch member recomputes, rejoins a later
shared pass and still matches the oracle bit-for-bit.
"""

from collections import Counter

import numpy as np
import pytest

from repro.core.incremental import IncrementalInference
from repro.runtime.platform import ResourceTrace
from repro.runtime.policies import ConfidencePolicy
from repro.serving import (
    EVICTION_POLICIES,
    BatchedSteppingBackend,
    LargestFirstEviction,
    LowestProgressEviction,
    LRUEviction,
    MemoryBudget,
    RecomputeBackend,
    Request,
    ServingEngine,
    SteppingBackend,
    get_eviction_policy,
)
from repro.serving.backend import ServingJob

POLICY_NAMES = ("lru", "largest-first", "lowest-progress")


def _full_quality():
    """Refine to the largest subnet regardless of time or confidence.

    Eviction changes step *timing* (recompute is charged honestly), so
    the bit-equality property is stated over time-blind refinement: the
    step sequence must not depend on the clock, only the answers.
    """
    return ConfidencePolicy(threshold=1.0, respect_deadline=False)


def _constant_trace(network, seconds_for_largest=0.4):
    largest = float(network.subnet_macs(network.num_subnets - 1))
    return ResourceTrace.constant(largest / seconds_for_largest, name="constant")


def _random_requests(rng, images, count, mean_gap=0.15, deadlines=True):
    """Oversubscribed arrivals; random deadlines drive EDF preemption."""
    requests = []
    arrival = 0.0
    for index in range(count):
        arrival += float(rng.exponential(mean_gap))
        deadline = (
            arrival + float(rng.uniform(0.3, 8.0)) if deadlines else None
        )
        requests.append(
            Request(
                request_id=index,
                arrival_time=arrival,
                inputs=images[index % len(images)][None],
                deadline=deadline,
            )
        )
    return requests


def _serve(
    network,
    requests,
    *,
    budget=None,
    policy="lru",
    batched=False,
    scheduler="edf",
    backend_cls=None,
    dtype=np.float32,
    batch_policy=None,
):
    if backend_cls is None:
        backend_cls = BatchedSteppingBackend if batched else SteppingBackend
    if batch_policy is None and batched:
        batch_policy = "same-level"
    engine = ServingEngine(
        backend_cls(network, policy=_full_quality(), dtype=dtype),
        _constant_trace(network),
        scheduler,
        batch_policy=batch_policy,
        memory_budget_bytes=budget,
        eviction_policy=policy,
        enforce_deadline=False,
    )
    return engine.serve(requests)


def _context_bytes(network, dtype=np.float32, batch_size=1):
    """Predicted footprint of one running context (batch-size-1 request)."""
    engine = IncrementalInference(network, dtype=dtype)
    return engine.plan.state_nbytes(batch_size)


def _assert_bit_equal(oracle, bounded):
    """Every request's outcome matches the unbounded run bit-for-bit."""
    assert len(oracle.jobs) == len(bounded.jobs)
    for a, b in zip(oracle.jobs, bounded.jobs):
        assert a.request.request_id == b.request.request_id
        assert a.status == b.status
        assert len(a.steps) == len(b.steps)
        for sa, sb in zip(a.steps, b.steps):
            assert sa.subnet == sb.subnet
            assert np.array_equal(sa.logits, sb.logits)
        assert np.array_equal(a.final_logits, b.final_logits)


# ----------------------------------------------------------------------
# Footprint accounting
# ----------------------------------------------------------------------
class TestFootprintAccounting:
    def test_plan_prediction_matches_measured_state(self, stepping_network, sample_pool):
        images, _ = sample_pool
        engine = IncrementalInference(stepping_network, dtype=np.float32)
        engine.run(images[:2], subnet=0)
        predicted = engine.plan.state_nbytes(2)
        assert engine.state_nbytes() == predicted
        # Caches are full-width from the first step: stepping further
        # changes no allocation, only the tiny logits stay constant too.
        engine.step_to(2)
        assert engine.state_nbytes() == predicted
        state = engine.export_state()
        assert state.nbytes() == predicted
        assert engine.state_nbytes() == 0  # engine reset on export

    def test_state_nbytes_scales_with_batch(self, stepping_network):
        engine = IncrementalInference(stepping_network, dtype=np.float32)
        single = engine.plan.state_nbytes(1)
        assert engine.plan.state_nbytes(4) == 4 * single
        with pytest.raises(ValueError, match="batch_size"):
            engine.plan.state_nbytes(0)

    def test_dtype_halves_footprint(self, stepping_network):
        f32 = IncrementalInference(stepping_network, dtype=np.float32)
        f64 = IncrementalInference(stepping_network, dtype=np.float64)
        assert f64.plan.state_nbytes(1) == 2 * f32.plan.state_nbytes(1)

    def test_plan_own_weights_are_counted_separately(self, stepping_network):
        plan = IncrementalInference(stepping_network, dtype=np.float32).plan
        assert plan.nbytes > 0  # the shared packed slabs, not per-request

    def test_drop_aux_frees_exactly_the_aux_bytes(self, stepping_network, sample_pool):
        images, _ = sample_pool
        engine = IncrementalInference(stepping_network, dtype=np.float32)
        engine.run(images[:1], subnet=1)
        state = engine.export_state()
        aux = state.aux_nbytes()
        total = state.nbytes()
        assert aux > 0
        assert state.drop_aux() == aux
        assert state.nbytes() == total - aux
        assert state.drop_aux() == 0  # idempotent

    def test_drop_aux_is_transparent_bitwise(self, stepping_network, sample_pool):
        """Tier-1 eviction changes no logits: buffers rebuild from cache."""
        images, _ = sample_pool
        engine = IncrementalInference(stepping_network, dtype=np.float32)
        control = IncrementalInference(stepping_network, dtype=np.float32)
        engine.run(images[:2], subnet=0)
        control.run(images[:2], subnet=0)
        state = engine.export_state()
        state.drop_aux()
        engine.import_state(state)
        assert np.array_equal(engine.step_to(2).logits, control.step_to(2).logits)

    def test_session_drop_state_sets_recompute(self, stepping_network, sample_pool):
        images, _ = sample_pool
        backend = SteppingBackend(stepping_network, dtype=np.float32)
        session = backend.open(images[:1])
        session.advance()
        session.advance()
        plain_cost = backend.step_cost(1, 2)
        assert session.next_step_macs() == plain_cost
        resident = session.resident_nbytes()
        assert resident == backend.context_nbytes(1)
        logits_before = session.logits
        assert session.drop_state() == resident
        assert session.resident_nbytes() == 0
        assert session.logits is logits_before  # delivered answer survives
        assert session.pending_recompute_macs() == backend.subnet_macs(1)
        assert session.next_step_macs() == plain_cost + backend.subnet_macs(1)
        # Resuming replays levels 0..1 bit-exactly, then steps to 2.
        control = SteppingBackend(stepping_network, dtype=np.float32).open(images[:1])
        for _ in range(3):
            expected = control.advance()
        outcome = session.advance()
        assert outcome.macs_recomputed == backend.subnet_macs(1)
        assert outcome.macs_charged == plain_cost + backend.subnet_macs(1)
        assert outcome.macs_reused == 0.0  # rebuilt, not served from memory
        assert np.array_equal(outcome.logits, expected.logits)


# ----------------------------------------------------------------------
# Eviction policies
# ----------------------------------------------------------------------
class TestEvictionPolicies:
    def test_registry(self):
        assert set(POLICY_NAMES) <= set(EVICTION_POLICIES)
        assert isinstance(get_eviction_policy("lru"), LRUEviction)
        assert isinstance(get_eviction_policy("largest-first"), LargestFirstEviction)
        assert isinstance(get_eviction_policy("lowest-progress"), LowestProgressEviction)
        with pytest.raises(KeyError, match="eviction"):
            get_eviction_policy("random-discard")

    def _jobs(self, stepping_network, sample_pool, levels):
        images, _ = sample_pool
        backend = SteppingBackend(stepping_network, dtype=np.float32)
        jobs = []
        for index, (level, batch) in enumerate(levels):
            session = backend.open(images[:batch])
            for _ in range(level + 1):
                session.advance()
            session.suspend()
            jobs.append(
                ServingJob(
                    request=Request(request_id=index, arrival_time=0.0, inputs=images[:batch]),
                    session=session,
                    steps_executed=level + 1,
                    last_executed_at=float(index),
                )
            )
        return jobs

    def test_lru_orders_coldest_first(self, stepping_network, sample_pool):
        jobs = self._jobs(stepping_network, sample_pool, [(0, 1), (1, 1), (2, 1)])
        jobs[0].last_executed_at = 5.0  # hottest despite lowest id
        order = LRUEviction().victims(jobs, now=9.0)
        assert [job.request.request_id for job in order] == [1, 2, 0]

    def test_largest_first_orders_by_bytes(self, stepping_network, sample_pool):
        jobs = self._jobs(stepping_network, sample_pool, [(1, 1), (1, 4), (1, 2)])
        order = LargestFirstEviction().victims(jobs, now=0.0)
        assert [job.request.request_id for job in order] == [1, 2, 0]

    def test_lowest_progress_orders_by_subnet(self, stepping_network, sample_pool):
        jobs = self._jobs(stepping_network, sample_pool, [(2, 1), (0, 1), (1, 1)])
        order = LowestProgressEviction().victims(jobs, now=0.0)
        assert [job.request.request_id for job in order] == [1, 2, 0]

    def test_budget_validation(self):
        with pytest.raises(ValueError, match="budget_bytes"):
            MemoryBudget(0)
        with pytest.raises(ValueError, match="finite"):
            MemoryBudget(float("inf"))
        with pytest.raises(KeyError, match="eviction"):
            MemoryBudget(1024, "fifo")
        assert not MemoryBudget(None).bounded
        clone = MemoryBudget(1024, "largest-first").clone()
        assert clone.budget_bytes == 1024 and clone.policy.name == "largest-first"


# ----------------------------------------------------------------------
# The headline property: bit-equality under any adequate budget
# ----------------------------------------------------------------------
class TestBitEqualityUnderEviction:
    """Eviction trades latency and MACs for memory — never answers."""

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_stepping_backend_bit_equal(self, stepping_network, sample_pool, policy, dtype):
        images, _ = sample_pool
        context = _context_bytes(stepping_network, dtype)
        requests = _random_requests(np.random.default_rng(2), images, 14)
        oracle = _serve(stepping_network, requests, dtype=dtype)
        bounded = _serve(
            stepping_network,
            requests,
            budget=int(context * 1.2),
            policy=policy,
            dtype=dtype,
        )
        assert bounded.cache_evictions > 0  # tier 2 genuinely engaged
        assert bounded.aux_evictions > 0
        _assert_bit_equal(oracle, bounded)

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_batched_backend_bit_equal(self, stepping_network, sample_pool, policy, dtype):
        images, _ = sample_pool
        context = _context_bytes(stepping_network, dtype)
        requests = _random_requests(
            np.random.default_rng(7), images, 14, deadlines=False
        )
        oracle = _serve(
            stepping_network, requests, batched=True, scheduler="fifo", dtype=dtype
        )
        bounded = _serve(
            stepping_network,
            requests,
            budget=int(context * 1.6),
            policy=policy,
            batched=True,
            scheduler="fifo",
            dtype=dtype,
        )
        assert bounded.cache_evictions > 0
        assert bounded.max_batch_occupancy > 1  # batching genuinely engaged
        _assert_bit_equal(oracle, bounded)

    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_budget_and_policy_fuzz(self, stepping_network, sample_pool, seed):
        """Seeded fuzz over arrivals, budget sizes and policies."""
        images, _ = sample_pool
        rng = np.random.default_rng(seed)
        context = _context_bytes(stepping_network)
        requests = _random_requests(rng, images, int(rng.integers(8, 16)))
        scheduler = ["edf", "priority", "fifo"][seed % 3]
        policy = POLICY_NAMES[seed % len(POLICY_NAMES)]
        budget = int(context * float(rng.uniform(1.05, 2.5)))
        oracle = _serve(stepping_network, requests, scheduler=scheduler)
        bounded = _serve(
            stepping_network, requests, budget=budget, policy=policy, scheduler=scheduler
        )
        _assert_bit_equal(oracle, bounded)
        # Budget never exceeded between events (peak is the post-event
        # high-water mark over the whole run).
        assert bounded.peak_resident_bytes <= budget
        # Honest accounting: the bounded run charges exactly the oracle's
        # MACs plus what it spent replaying evicted contexts.
        assert bounded.total_macs == oracle.total_macs + bounded.total_macs_recomputed


# ----------------------------------------------------------------------
# Operational guarantees
# ----------------------------------------------------------------------
class TestNeverEvictRunningJob:
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_no_protected_eviction_with_adequate_budget(
        self, stepping_network, sample_pool, policy
    ):
        """A budget that holds one running context never touches it."""
        images, _ = sample_pool
        context = _context_bytes(stepping_network)
        requests = _random_requests(np.random.default_rng(2), images, 14)
        bounded = _serve(
            stepping_network, requests, budget=int(context * 1.2), policy=policy
        )
        assert bounded.eviction_events  # vacuity guard
        assert not any(event.protected for event in bounded.eviction_events)

    def test_recomputed_steps_follow_a_cache_eviction(
        self, stepping_network, sample_pool
    ):
        """Recompute is charged exactly when (and only when) state was lost."""
        images, _ = sample_pool
        context = _context_bytes(stepping_network)
        requests = _random_requests(np.random.default_rng(2), images, 14)
        bounded = _serve(stepping_network, requests, budget=int(context * 1.2))
        evicted_at = {}
        for event in bounded.eviction_events:
            if event.tier == "cache":
                evicted_at.setdefault(event.request_id, []).append(event.time)
        recomputed = 0
        for job in bounded.jobs:
            for step in job.steps:
                if step.macs_recomputed > 0:
                    recomputed += 1
                    times = evicted_at.get(job.request.request_id, [])
                    assert any(t <= step.start_time + 1e-9 for t in times)
        assert recomputed > 0
        assert recomputed == bounded.cache_evictions  # one resume per drop

    def test_budget_exactly_one_context_still_serves(
        self, stepping_network, sample_pool
    ):
        images, _ = sample_pool
        context = _context_bytes(stepping_network)
        requests = _random_requests(np.random.default_rng(2), images, 10)
        oracle = _serve(stepping_network, requests)
        bounded = _serve(stepping_network, requests, budget=context)
        _assert_bit_equal(oracle, bounded)
        assert bounded.peak_resident_bytes <= context


class TestEvictionBatchingInteraction:
    def test_evicted_member_recomputes_and_rejoins_a_batch(
        self, stepping_network, sample_pool
    ):
        """An evicted member rebuilds inside a later shared pass, bit-equal."""
        images, _ = sample_pool
        context = _context_bytes(stepping_network)
        requests = _random_requests(
            np.random.default_rng(7), images, 14, deadlines=False
        )
        oracle = _serve(stepping_network, requests, batched=True, scheduler="fifo")
        bounded = _serve(
            stepping_network,
            requests,
            budget=int(context * 1.6),
            batched=True,
            scheduler="fifo",
        )
        _assert_bit_equal(oracle, bounded)
        assert bounded.cache_evictions > 0
        # Batch membership is visible through the shared dispatch times:
        # every member of one pass starts and finishes at the same instant.
        dispatch_sizes = Counter(
            (step.start_time, step.finish_time)
            for job in bounded.jobs
            for step in job.steps
        )
        rejoined = [
            step
            for job in bounded.jobs
            for step in job.steps
            if step.macs_recomputed > 0
            and dispatch_sizes[(step.start_time, step.finish_time)] > 1
        ]
        assert rejoined  # recomputed *inside* a shared pass


class TestHonestAccounting:
    def test_recompute_backend_loses_nothing_to_eviction(
        self, stepping_network, sample_pool
    ):
        """The slimmable baseline pays full MACs anyway: eviction is free."""
        images, _ = sample_pool
        context = _context_bytes(stepping_network)
        requests = _random_requests(np.random.default_rng(2), images, 12)
        oracle = _serve(stepping_network, requests, backend_cls=RecomputeBackend)
        bounded = _serve(
            stepping_network,
            requests,
            budget=int(context * 1.2),
            backend_cls=RecomputeBackend,
        )
        _assert_bit_equal(oracle, bounded)
        assert bounded.total_macs_recomputed == 0.0
        assert bounded.total_macs == oracle.total_macs

    def test_reuse_is_reported_as_recompute_after_eviction(
        self, stepping_network, sample_pool
    ):
        """Evicted-then-replayed MACs never count as reuse."""
        images, _ = sample_pool
        context = _context_bytes(stepping_network)
        requests = _random_requests(np.random.default_rng(2), images, 14)
        oracle = _serve(stepping_network, requests)
        bounded = _serve(stepping_network, requests, budget=int(context * 1.2))
        assert bounded.cache_evictions > 0
        assert bounded.total_macs_reused < oracle.total_macs_reused
        assert bounded.recompute_overhead > 0.0
        assert oracle.recompute_overhead == 0.0

    def test_report_dict_includes_memory_metrics(self, stepping_network, sample_pool):
        import json

        images, _ = sample_pool
        context = _context_bytes(stepping_network)
        requests = _random_requests(np.random.default_rng(2), images, 8)
        report = _serve(
            stepping_network, requests, budget=int(context * 1.5), policy="largest-first"
        )
        payload = report.as_dict()
        assert payload["memory_budget_bytes"] == int(context * 1.5)
        assert payload["eviction_policy"] == "largest-first"
        assert payload["peak_resident_bytes"] <= int(context * 1.5)
        json.dumps(payload)  # artifact-ready

    def test_unbounded_run_reports_peak(self, stepping_network, sample_pool):
        images, _ = sample_pool
        requests = _random_requests(np.random.default_rng(2), images, 12)
        report = _serve(stepping_network, requests)
        context = _context_bytes(stepping_network)
        assert report.memory_budget_bytes is None
        assert report.peak_resident_bytes >= context  # at least one context
        assert report.cache_evictions == report.aux_evictions == 0


class TestEngineValidation:
    def test_bad_budget_or_policy_fail_fast(self, stepping_network):
        backend = SteppingBackend(stepping_network, dtype=np.float32)
        trace = _constant_trace(stepping_network)
        with pytest.raises(ValueError, match="budget_bytes"):
            ServingEngine(backend, trace, memory_budget_bytes=0)
        with pytest.raises(KeyError, match="eviction"):
            ServingEngine(backend, trace, eviction_policy="newest-first")
