"""Tests for the scheduling policies, including the ordering properties
the serving engine relies on: FIFO preserves arrival order and EDF never
inverts two deadline-ordered requests on a constant trace."""

import numpy as np
import pytest

from repro.runtime.platform import ResourceTrace
from repro.serving import (
    EDFScheduler,
    FIFOScheduler,
    PriorityScheduler,
    Request,
    Scheduler,
    ServingEngine,
    SteppingBackend,
    get_scheduler,
)
from repro.serving.backend import ServingJob


def _job(request_id, arrival, deadline=None, priority=0):
    request = Request(
        request_id=request_id,
        arrival_time=arrival,
        inputs=np.zeros((1, 3, 12, 12)),
        deadline=deadline,
        priority=priority,
    )
    return ServingJob(request=request, session=None)


class TestSelect:
    def test_fifo_picks_earliest_arrival(self):
        jobs = [_job(0, 2.0), _job(1, 0.5), _job(2, 1.0)]
        assert FIFOScheduler().select(jobs, now=3.0).request.request_id == 1

    def test_fifo_breaks_ties_by_id(self):
        jobs = [_job(3, 1.0), _job(1, 1.0), _job(2, 1.0)]
        assert FIFOScheduler().select(jobs, now=3.0).request.request_id == 1

    def test_edf_picks_earliest_deadline(self):
        jobs = [_job(0, 0.0, deadline=5.0), _job(1, 1.0, deadline=2.0), _job(2, 0.5, deadline=9.0)]
        assert EDFScheduler().select(jobs, now=1.5).request.request_id == 1

    def test_edf_best_effort_loses_to_any_deadline(self):
        jobs = [_job(0, 0.0), _job(1, 1.0, deadline=100.0)]
        assert EDFScheduler().select(jobs, now=1.5).request.request_id == 1

    def test_priority_larger_wins(self):
        jobs = [_job(0, 0.0, priority=0), _job(1, 1.0, priority=5), _job(2, 0.5, priority=2)]
        assert PriorityScheduler().select(jobs, now=1.5).request.request_id == 1

    def test_registry(self):
        assert isinstance(get_scheduler("fifo"), FIFOScheduler)
        assert isinstance(get_scheduler("edf"), EDFScheduler)
        assert isinstance(get_scheduler("priority"), PriorityScheduler)
        with pytest.raises(KeyError):
            get_scheduler("lottery")


class TestReadyQueue:
    """The heap-backed queue must agree with the stateless ordering oracle."""

    @pytest.mark.parametrize("name", ["fifo", "edf", "priority"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_pick_matches_select_under_churn(self, name, seed):
        rng = np.random.default_rng(seed)
        scheduler = get_scheduler(name)
        jobs = []
        for index in range(25):
            arrival = round(float(rng.uniform(0.0, 3.0)), 1)
            deadline = (
                None
                if rng.random() < 0.3
                else arrival + round(float(rng.uniform(1.0, 9.0)), 1)
            )
            jobs.append(
                _job(index, arrival, deadline=deadline, priority=int(rng.integers(0, 3)))
            )
        # Admit in arrival order, as the engine does.
        jobs.sort(key=lambda job: (job.request.arrival_time, job.request.request_id))
        scheduler.clear()
        live = []
        order = []
        for job in jobs:
            live.append(job)
            scheduler.add(job)
            # Randomly finalise some jobs between admissions (preemption churn).
            while live and rng.random() < 0.35:
                picked = scheduler.pick(now=0.0)
                assert picked is scheduler.select(live, now=0.0)
                order.append(picked.request.request_id)
                live.remove(picked)
                scheduler.discard(picked)
        while live:
            picked = scheduler.pick(now=0.0)
            assert picked is scheduler.select(live, now=0.0)
            order.append(picked.request.request_id)
            live.remove(picked)
            scheduler.discard(picked)
        assert len(order) == len(jobs)

    def test_pick_is_stable_until_discard(self):
        scheduler = get_scheduler("edf")
        scheduler.clear()
        for job in [_job(0, 0.0, deadline=5.0), _job(1, 0.0, deadline=2.0)]:
            scheduler.add(job)
        first = scheduler.pick(now=0.0)
        assert scheduler.pick(now=1.0) is first  # job stays queued between steps
        scheduler.discard(first)
        assert scheduler.pick(now=1.0).request.request_id == 0

    def test_select_only_subclass_still_serves(self, stepping_network):
        """The pre-heap extension contract (override select() only) keeps working."""

        class LIFOScheduler(Scheduler):
            name = "lifo"

            def select(self, jobs, now):
                return max(jobs, key=lambda job: (job.request.arrival_time, job.request.request_id))

        requests = _random_requests(np.random.default_rng(0), 6)
        report = _serve(stepping_network, requests, LIFOScheduler())
        assert len(report.completed_jobs) == 6

    def test_clear_resets_between_serves(self):
        scheduler = get_scheduler("fifo")
        scheduler.add(_job(0, 0.0))
        scheduler.clear()
        assert len(scheduler) == 0
        with pytest.raises(LookupError):
            scheduler.pick(now=0.0)


class TestReadyQueueFuzz:
    """Randomized op sequences against the stateless ``select`` oracle.

    The engine drives the heap-backed queues through interleaved
    add / pick / discard traffic (including expiry-heap discards that
    never pick), with lazy heap deletion underneath; for every reachable
    queue state, ``pick`` must agree with the ``select`` ordering oracle
    over the same live set, and ``get``/``len`` must track membership.
    """

    @pytest.mark.parametrize("name", ["fifo", "edf", "priority"])
    @pytest.mark.parametrize("seed", range(6))
    def test_random_op_sequence_matches_oracle(self, name, seed):
        rng = np.random.default_rng(seed)
        scheduler = get_scheduler(name)
        live = {}
        next_id = 0
        for _ in range(300):
            op = rng.choice(["add", "pick", "expire", "complete", "get"], p=[0.35, 0.25, 0.15, 0.15, 0.1])
            if op == "add":
                arrival = round(float(rng.uniform(0.0, 4.0)), 1)  # ties likely
                deadline = (
                    None
                    if rng.random() < 0.3
                    else arrival + round(float(rng.uniform(0.5, 6.0)), 1)
                )
                job = _job(
                    next_id, arrival, deadline=deadline, priority=int(rng.integers(0, 3))
                )
                live[next_id] = job
                scheduler.add(job)
                next_id += 1
            elif op == "pick" and live:
                picked = scheduler.pick(now=0.0)
                assert picked is scheduler.select(list(live.values()), now=0.0)
                # pick is stable: the winner stays queued until discarded
                assert scheduler.pick(now=1.0) is picked
            elif op == "expire" and live:
                # Expiry-heap path: drop a random job *without* picking it
                # (lazy heap entries must expire silently on later pops).
                victim_id = int(rng.choice(list(live)))
                scheduler.discard(live.pop(victim_id))
                assert scheduler.get(victim_id) is None
            elif op == "complete" and live:
                picked = scheduler.pick(now=0.0)
                live.pop(picked.request.request_id)
                scheduler.discard(picked)
            elif op == "get" and live:
                some_id = int(rng.choice(list(live)))
                assert scheduler.get(some_id) is live[some_id]
            assert len(scheduler) == len(live)
        # Drain: the emptied queue must keep agreeing with the oracle.
        while live:
            picked = scheduler.pick(now=0.0)
            assert picked is scheduler.select(list(live.values()), now=0.0)
            live.pop(picked.request.request_id)
            scheduler.discard(picked)
        with pytest.raises(LookupError):
            scheduler.pick(now=0.0)

    @pytest.mark.parametrize(
        "name",
        ["fifo", "edf", "priority", "batch-aware", "least-recompute", "utility-per-mac"],
    )
    @pytest.mark.parametrize("seed", range(4))
    def test_edge_index_fuzz_matches_oracle(self, name, seed):
        """The per-edge ready index against the brute-force edge scan.

        Random add / advance / evict / discard / query traffic over jobs
        whose subnet edges and cost signals keep changing (with
        ``reindex`` after every mutation, as the engine guarantees): at
        every reachable state, ``count_at_edge`` must equal the live
        census, ``jobs_at_edge`` must equal the key-sorted edge scan for
        every fetch size, and ``pick`` must agree with ``select``.
        """

        class _Session:
            def __init__(self):
                self.current_subnet = 0
                self._next = 0
                self._recompute = 0.0
                self._macs = 1.0

            def next_subnet(self):
                return self._next

            def pending_recompute_macs(self):
                return self._recompute

            def next_step_macs(self):
                return self._macs

        def make_job(request_id, rng):
            arrival = round(float(rng.uniform(0.0, 4.0)), 1)
            request = Request(
                request_id=request_id,
                arrival_time=arrival,
                inputs=np.zeros((1, 3, 12, 12)),
                deadline=(
                    None
                    if rng.random() < 0.3
                    else arrival + round(float(rng.uniform(1.0, 9.0)), 1)
                ),
                priority=int(rng.integers(0, 3)),
            )
            session = _Session()
            session._macs = round(float(rng.uniform(0.5, 4.0)), 2)
            return ServingJob(request=request, session=session)

        rng = np.random.default_rng(seed)
        scheduler = get_scheduler(name)
        live = {}
        next_id = 0
        edges = [(-1, 0), (0, 1), (1, 2), (2, 3)]
        for _ in range(250):
            op = rng.choice(
                ["add", "advance", "evict", "discard", "pick", "edges"],
                p=[0.3, 0.2, 0.1, 0.15, 0.1, 0.15],
            )
            if op == "add":
                job = make_job(next_id, rng)
                live[next_id] = job
                scheduler.add(job)
                next_id += 1
            elif op == "advance" and live:
                # A level executed: the edge moves, cost signals change.
                job = live[int(rng.choice(list(live)))]
                if job.session._next >= 3:
                    continue
                job.steps_executed += 1
                job.session.current_subnet = job.session._next
                job.session._next += 1
                job.session._recompute = 0.0
                job.session._macs = round(float(rng.uniform(0.5, 4.0)), 2)
                scheduler.reindex(job)
            elif op == "evict" and live:
                # Eviction changed the replay surcharge, not the edge.
                job = live[int(rng.choice(list(live)))]
                job.session._recompute = round(float(rng.uniform(1.0, 9.0)), 1)
                scheduler.reindex(job)
            elif op == "discard" and live:
                victim = live.pop(int(rng.choice(list(live))))
                scheduler.discard(victim)
            elif op == "pick" and live:
                picked = scheduler.pick(now=0.0)
                assert picked is scheduler.select(list(live.values()), now=0.0)
            elif op == "edges":
                expected = {}
                for job in live.values():
                    expected.setdefault(job.edge, []).append(job)
                assert sorted(scheduler.edges()) == sorted(expected)
                for edge in edges:
                    at_edge = expected.get(edge, [])
                    assert scheduler.count_at_edge(edge) == len(at_edge)
                    ranked = sorted(at_edge, key=scheduler.key)
                    for fetch in (1, 2, len(at_edge) or 1, None):
                        got = scheduler.jobs_at_edge(edge, fetch)
                        want = ranked if fetch is None else ranked[:fetch]
                        assert [j.request.request_id for j in got] == [
                            j.request.request_id for j in want
                        ]
            assert len(scheduler) == len(live)
        while live:
            picked = scheduler.pick(now=0.0)
            assert picked is scheduler.select(list(live.values()), now=0.0)
            live.pop(picked.request.request_id)
            scheduler.discard(picked)
        assert scheduler.edges() == []

    @pytest.mark.parametrize("name", ["fifo", "edf", "priority"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_expiry_heap_fuzz_end_to_end(self, stepping_network, name, seed):
        """Random deadline traffic through drop_expired admission control.

        Hardens the engine's expiry heap (lazy started/finalised skips):
        dropped jobs must never have consumed accelerator time, started
        deadline jobs must have begun before their deadline, and every
        request must be accounted for exactly once.
        """
        rng = np.random.default_rng(seed)
        requests = []
        arrival = 0.0
        for index in range(18):
            arrival += float(rng.exponential(0.12))
            deadline = (
                None if rng.random() < 0.25 else arrival + float(rng.uniform(0.05, 2.0))
            )
            requests.append(
                Request(
                    request_id=index,
                    arrival_time=arrival,
                    inputs=np.zeros((1, 3, 12, 12)),
                    deadline=deadline,
                    priority=int(rng.integers(0, 3)),
                )
            )
        largest = float(stepping_network.subnet_macs(stepping_network.num_subnets - 1))
        trace = ResourceTrace.constant(largest / 0.4, name="constant")
        engine = ServingEngine(
            SteppingBackend(stepping_network), trace, name, drop_expired=True
        )
        report = engine.serve(requests)
        assert report.num_jobs == len(requests)
        statuses = {job.status for job in report.jobs}
        assert statuses <= {"completed", "dropped"}
        for job in report.jobs:
            if job.status == "dropped":
                # Admission control refunds the accelerator entirely.
                assert job.steps == []
                assert job.request.deadline is not None
            elif job.request.deadline is not None and job.steps:
                # A started deadline job began strictly before expiring.
                assert job.steps[0].start_time < job.request.deadline
        completed = [job for job in report.jobs if job.status == "completed"]
        assert len(completed) + len(report.dropped_jobs) == len(requests)


def _serve(network, requests, scheduler):
    largest = float(network.subnet_macs(network.num_subnets - 1))
    trace = ResourceTrace.constant(largest / 0.4, name="constant")
    engine = ServingEngine(SteppingBackend(network), trace, scheduler)
    return engine.serve(requests)


def _random_requests(rng, count, simultaneous=False):
    requests = []
    arrival = 0.0
    for index in range(count):
        if not simultaneous:
            arrival += float(rng.exponential(0.3))
        requests.append(
            Request(
                request_id=index,
                arrival_time=arrival,
                inputs=np.zeros((1, 3, 12, 12)),
                deadline=arrival + float(rng.uniform(0.5, 5.0)),
            )
        )
    return requests


class TestFIFOOrderProperty:
    """FIFO preserves arrival order: requests finish in arrival order."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_completion_follows_arrival_order(self, stepping_network, seed):
        rng = np.random.default_rng(seed)
        requests = _random_requests(rng, 12)
        report = _serve(stepping_network, requests, "fifo")
        by_arrival = sorted(report.jobs, key=lambda job: job.request.arrival_time)
        completions = [job.completion_time for job in by_arrival]
        assert completions == sorted(completions)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_first_touch_follows_arrival_order(self, stepping_network, seed):
        rng = np.random.default_rng(seed)
        requests = _random_requests(rng, 12)
        report = _serve(stepping_network, requests, "fifo")
        by_arrival = sorted(report.jobs, key=lambda job: job.request.arrival_time)
        first_starts = [job.steps[0].start_time for job in by_arrival]
        assert first_starts == sorted(first_starts)

    def test_fifo_runs_to_completion(self, stepping_network):
        """No interleaving: a job's steps are contiguous on the accelerator."""
        rng = np.random.default_rng(3)
        requests = _random_requests(rng, 8, simultaneous=True)
        report = _serve(stepping_network, requests, "fifo")
        spans = sorted(
            (job.steps[0].start_time, job.completion_time, job.request.request_id)
            for job in report.jobs
            if job.steps
        )
        for (_, end_a, _), (start_b, _, _) in zip(spans, spans[1:]):
            assert start_b >= end_a - 1e-9


class TestEDFOrderProperty:
    """EDF never inverts two deadline-ordered requests on a constant trace."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_simultaneous_arrivals_served_in_deadline_order(self, stepping_network, seed):
        rng = np.random.default_rng(seed)
        requests = _random_requests(rng, 10, simultaneous=True)
        report = _serve(stepping_network, requests, "edf")
        by_deadline = sorted(report.jobs, key=lambda job: job.request.deadline)
        first_results = [job.first_result_time for job in by_deadline]
        assert first_results == sorted(first_results)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_no_deadline_inversion_among_ready_jobs(self, stepping_network, seed):
        """Whenever a step starts, no *waiting* request has a strictly
        earlier deadline than the request being served."""
        rng = np.random.default_rng(seed)
        requests = _random_requests(rng, 10)
        report = _serve(stepping_network, requests, "edf")

        schedule = []  # (start_time, request_id)
        for job in report.jobs:
            for step in job.steps:
                schedule.append((step.start_time, step.finish_time, job.request.request_id))
        schedule.sort()
        info = {job.request.request_id: job for job in report.jobs}

        for start, _, running_id in schedule:
            running_deadline = info[running_id].request.deadline
            for other in report.jobs:
                if other.request.request_id == running_id:
                    continue
                # "Ready": arrived, not yet finished at this instant.
                if other.request.arrival_time > start + 1e-9:
                    continue
                if other.completion_time <= start + 1e-9:
                    continue
                assert other.request.deadline >= running_deadline - 1e-9


class TestPrioritySchedulingEndToEnd:
    def test_high_priority_burst_served_first(self, stepping_network):
        inputs = np.zeros((1, 3, 12, 12))
        low = [
            Request(request_id=i, arrival_time=0.0, inputs=inputs, priority=0) for i in range(3)
        ]
        high = [
            Request(request_id=10 + i, arrival_time=0.0, inputs=inputs, priority=9)
            for i in range(3)
        ]
        report = _serve(stepping_network, low + high, "priority")
        high_done = max(job.completion_time for job in report.jobs if job.request.priority == 9)
        low_first = min(job.first_result_time for job in report.jobs if job.request.priority == 0)
        assert high_done <= low_first + 1e-9
