"""Request-stream coverage: determinism, spec round-trips, merged-id uniqueness.

Complements ``test_request.py`` (per-generator behaviour) with the
properties the declarative fleet layer depends on: a seeded stream is a
pure function of its config, a replayed trace survives the
StreamSpec/ClusterSpec JSON round trip, and streams merged into one
fleet workload never collide on ``request_id``.
"""

import json

import numpy as np
import pytest

from repro.serving import (
    ClusterSpec,
    ServingSpec,
    StreamSpec,
    bursty_stream,
    get_stream,
    merge_streams,
    periodic_stream,
    poisson_stream,
    trace_replay_stream,
)


class TestDeterminism:
    def test_poisson_fixed_seed_is_reproducible(self, sample_pool):
        images, labels = sample_pool
        kwargs = dict(rate=3.0, num_requests=20, relative_deadline=1.0, batch_size=2)
        first = poisson_stream(images, labels, seed=11, **kwargs)
        second = poisson_stream(images, labels, seed=11, **kwargs)
        assert [r.arrival_time for r in first] == [r.arrival_time for r in second]
        assert [r.deadline for r in first] == [r.deadline for r in second]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.inputs, b.inputs)

    def test_poisson_seed_changes_arrivals(self, sample_pool):
        images, labels = sample_pool
        kwargs = dict(rate=3.0, num_requests=20)
        first = poisson_stream(images, labels, seed=11, **kwargs)
        other = poisson_stream(images, labels, seed=12, **kwargs)
        assert [r.arrival_time for r in first] != [r.arrival_time for r in other]

    def test_bursty_fixed_seed_is_reproducible(self, sample_pool):
        images, labels = sample_pool
        kwargs = dict(num_bursts=4, burst_size=3, mean_gap=2.0, intra_burst_gap=0.01)
        first = bursty_stream(images, labels, seed=5, **kwargs)
        second = bursty_stream(images, labels, seed=5, **kwargs)
        assert [r.arrival_time for r in first] == [r.arrival_time for r in second]

    def test_priority_draw_is_seeded(self, sample_pool):
        images, labels = sample_pool
        kwargs = dict(rate=2.0, num_requests=30, priority_levels=3)
        first = poisson_stream(images, labels, seed=9, **kwargs)
        second = poisson_stream(images, labels, seed=9, **kwargs)
        assert [r.priority for r in first] == [r.priority for r in second]
        assert len({r.priority for r in first}) > 1


class TestReplayRoundTrip:
    ARRIVALS = [0.05, 0.3, 0.31, 1.2, 2.75]

    def test_replay_through_stream_spec_dict(self, sample_pool):
        images, labels = sample_pool
        spec = StreamSpec(
            kind="replay",
            params={"arrival_times": self.ARRIVALS, "relative_deadline": 0.5, "batch_size": 2},
        )
        recovered = StreamSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert recovered == spec
        direct = trace_replay_stream(
            self.ARRIVALS, images, labels, relative_deadline=0.5, batch_size=2
        )
        rebuilt = recovered.build(images, labels)
        assert [r.arrival_time for r in rebuilt] == [r.arrival_time for r in direct]
        assert [r.deadline for r in rebuilt] == [r.deadline for r in direct]
        assert [r.request_id for r in rebuilt] == [r.request_id for r in direct]
        for a, b in zip(rebuilt, direct):
            np.testing.assert_array_equal(a.inputs, b.inputs)

    def test_replay_through_cluster_spec_json(self, sample_pool):
        """A recorded trace checked into a ClusterSpec JSON replays verbatim."""
        images, labels = sample_pool
        cluster = ClusterSpec(
            nodes=(ServingSpec(),),
            streams=(StreamSpec(kind="replay", params={"arrival_times": self.ARRIVALS}),),
        )
        recovered = ClusterSpec.from_json(json.dumps(cluster.to_dict()))
        requests = recovered.build_requests(images, labels)
        assert [r.arrival_time for r in requests] == sorted(self.ARRIVALS)

    def test_registry_resolves_replay_adapter(self, sample_pool):
        images, labels = sample_pool
        generator = get_stream("replay")
        requests = generator(images, labels, arrival_times=[0.0, 1.0])
        assert [r.arrival_time for r in requests] == [0.0, 1.0]


class TestMergedIdUniqueness:
    def test_merge_reassigns_globally_unique_ids(self, sample_pool):
        images, labels = sample_pool
        streams = [
            poisson_stream(images, labels, rate=4.0, num_requests=7, seed=0),
            periodic_stream(images, labels, period=0.2, num_requests=5),
            trace_replay_stream([0.1, 0.4, 0.9], images, labels),
        ]
        # Every generator numbers from zero: raw ids collide across streams.
        raw_ids = [r.request_id for stream in streams for r in stream]
        assert len(set(raw_ids)) < len(raw_ids)
        merged = merge_streams(*streams)
        ids = [r.request_id for r in merged]
        assert ids == list(range(len(raw_ids)))  # unique, dense, arrival-ordered
        arrivals = [r.arrival_time for r in merged]
        assert arrivals == sorted(arrivals)

    def test_merge_preserves_payload_and_metadata(self, sample_pool):
        images, labels = sample_pool
        stream = poisson_stream(
            images, labels, rate=2.0, num_requests=4, relative_deadline=1.0, seed=2
        )
        merged = merge_streams(stream)
        for original, renumbered in zip(stream, merged):
            assert renumbered.arrival_time == original.arrival_time
            assert renumbered.deadline == original.deadline
            np.testing.assert_array_equal(renumbered.inputs, original.inputs)

    def test_merge_tie_break_is_stream_order(self, sample_pool):
        images, _ = sample_pool
        a = periodic_stream(images, period=1.0, num_requests=2)
        b = periodic_stream(images, period=1.0, num_requests=2)
        merged = merge_streams(a, b)
        # Simultaneous arrivals: stream a's request outranks stream b's.
        assert [r.arrival_time for r in merged] == [0.0, 0.0, 1.0, 1.0]
        np.testing.assert_array_equal(merged[0].inputs, a[0].inputs)
        np.testing.assert_array_equal(merged[1].inputs, b[0].inputs)

    def test_cluster_spec_streams_are_merged_uniquely(self, sample_pool):
        images, labels = sample_pool
        spec = ClusterSpec(
            nodes=(ServingSpec(),),
            streams=(
                StreamSpec(kind="poisson", params={"rate": 5.0, "num_requests": 6, "seed": 0}),
                StreamSpec(kind="bursty", params={"num_bursts": 2, "burst_size": 3,
                                                  "mean_gap": 1.0, "seed": 1}),
            ),
        )
        requests = spec.build_requests(images, labels)
        ids = [r.request_id for r in requests]
        assert len(set(ids)) == len(ids) == 12
