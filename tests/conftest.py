"""Shared fixtures and helpers for the test suite.

Expensive artefacts (trained tiny networks) are session-scoped so the
suite stays fast while still exercising realistic end-to-end behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import SMOKE, prepare_data, prepare_spec, scaled_config
from repro.core import SteppingConfig, SteppingNetwork, TrainingConfig, build_steppingnet
from repro.data import DataLoader, SyntheticCIFAR, SyntheticImageConfig, SyntheticVectors
from repro.models import lenet_3c1l, mlp, tiny_cnn
from repro.utils import set_seed


@pytest.fixture(autouse=True)
def _seed_everything():
    """Keep every test deterministic regardless of execution order."""
    set_seed(0)
    np.random.seed(0)
    yield


@pytest.fixture
def rng():
    return np.random.default_rng(0)


# ----------------------------------------------------------------------
# Small data fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def vector_dataset():
    return SyntheticVectors(num_classes=4, dim=16, samples_per_class=16, seed=0)


@pytest.fixture
def image_dataset():
    config = SyntheticImageConfig(num_classes=4, image_size=12, samples_per_class=8, seed=0)
    return SyntheticCIFAR(config, train=True)


@pytest.fixture
def image_loader(image_dataset):
    return DataLoader(image_dataset, batch_size=16, shuffle=True, seed=0)


@pytest.fixture
def image_batch(image_loader):
    return next(iter(image_loader))


# ----------------------------------------------------------------------
# Small model / network fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def tiny_spec():
    """A tiny CNN spec matching the 12x12 synthetic images."""
    return tiny_cnn(num_classes=4, input_shape=(3, 12, 12), width_scale=0.5)


@pytest.fixture
def mlp_spec():
    return mlp(num_classes=4, input_dim=16, hidden=(12, 8))


@pytest.fixture
def stepping_config():
    return SteppingConfig(
        mac_budgets=(0.15, 0.4, 0.7, 0.9),
        expansion_ratio=1.5,
        num_iterations=4,
        batches_per_iteration=1,
        retrain_epochs=1,
        teacher_epochs=1,
        training=TrainingConfig(learning_rate=0.05, batch_size=16),
    )


@pytest.fixture
def stepping_network(tiny_spec, rng):
    return SteppingNetwork(tiny_spec.expand(1.5), num_subnets=4, rng=rng)


@pytest.fixture(scope="session")
def trained_smoke_result():
    """A fully built SteppingNet at smoke scale, shared by integration tests."""
    train_loader, test_loader, num_classes = prepare_data("cifar10", SMOKE)
    spec = prepare_spec("lenet-3c1l", num_classes, SMOKE)
    config = scaled_config("lenet-3c1l", SMOKE)
    return build_steppingnet(spec, train_loader, test_loader, config), test_loader


# ----------------------------------------------------------------------
# Numerical gradient checking
# ----------------------------------------------------------------------
def numerical_gradient(func, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``func`` w.r.t. ``array``."""
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = func()
        flat[index] = original - eps
        minus = func()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * eps)
    return grad


@pytest.fixture
def gradcheck():
    """Return a helper asserting autograd gradients match numerical gradients."""

    def check(build_loss, tensors, rtol=1e-4, atol=1e-6):
        """``build_loss()`` must rebuild the scalar loss Tensor from ``tensors``."""
        loss = build_loss()
        loss.backward()
        for tensor in tensors:
            analytic = tensor.grad.copy()
            numeric = numerical_gradient(lambda: build_loss().item(), tensor.data)
            np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)

    return check
