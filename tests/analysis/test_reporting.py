"""Tests for report/table emitters."""

from repro.analysis.metrics import AccuracyMacCurve
from repro.analysis.reporting import (
    ascii_curve,
    ascii_grouped_bars,
    format_curves,
    format_experiment_header,
    format_markdown_table,
    format_table1,
)


class TestMarkdownTable:
    def test_header_and_rows(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 2, "b": 0.25}]
        table = format_markdown_table(rows)
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "| --- | --- |"
        assert "| 1 | 0.5000 |" in table
        assert len(lines) == 4

    def test_empty(self):
        assert format_markdown_table([]) == "(no rows)"

    def test_column_selection_and_missing_values(self):
        table = format_markdown_table([{"a": 1}], columns=["a", "missing"])
        assert "missing" in table

    def test_table1_layout(self):
        rows = [{
            "network": "lenet-3c1l", "dataset": "cifar10", "orig_accuracy": 0.8336,
            "A1": 0.685, "M1/Mt": 0.0965, "A2": 0.7738, "M2/Mt": 0.2955,
        }]
        table = format_table1(rows)
        assert "| network | dataset | orig_accuracy | A1 | M1/Mt | A2 | M2/Mt |" in table
        assert "lenet-3c1l" in table


class TestCurveRendering:
    def _curve(self):
        return AccuracyMacCurve("SteppingNet", [0.1, 0.5, 0.9], [0.6, 0.75, 0.8])

    def test_format_curves_contains_all_methods(self):
        other = AccuracyMacCurve("Slimmable Net.", [0.1, 0.9], [0.5, 0.7])
        text = format_curves([self._curve(), other])
        assert "SteppingNet" in text and "Slimmable Net." in text

    def test_ascii_curve_one_line_per_point(self):
        text = ascii_curve(self._curve())
        assert text.count("MAC") == 3
        assert "acc" in text

    def test_ascii_curve_empty(self):
        assert "(empty)" in ascii_curve(AccuracyMacCurve("x", [], []))

    def test_ascii_grouped_bars(self):
        groups = {"SteppingNet": [0.6, 0.7], "w/o KD": [0.5, 0.65]}
        text = ascii_grouped_bars(groups, ["Subnet1", "Subnet2"])
        assert "Subnet1" in text and "SteppingNet" in text

    def test_ascii_grouped_bars_empty(self):
        assert ascii_grouped_bars({}, []) == "(no data)"

    def test_header(self):
        header = format_experiment_header("Table I", "Accuracy of subnets")
        assert "Table I" in header and "Accuracy of subnets" in header
