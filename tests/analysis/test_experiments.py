"""Smoke tests of the experiment runners (run at the SMOKE scale)."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    SMOKE,
    ExperimentScale,
    dataset_classes,
    get_scale,
    minimum_image_size,
    prepare_data,
    prepare_spec,
    run_figure6_case,
    run_figure8_case,
    run_incremental_reuse_case,
    run_table1_case,
    scaled_config,
)
from repro.analysis.metrics import AccuracyMacCurve


class TestScalesAndPreparation:
    def test_get_scale(self):
        assert get_scale("smoke") is SMOKE
        with pytest.raises(KeyError):
            get_scale("gigantic")

    def test_dataset_classes(self):
        assert dataset_classes("cifar10", SMOKE) == SMOKE.cifar10_classes
        assert dataset_classes("cifar100", SMOKE) == SMOKE.cifar100_classes
        with pytest.raises(ValueError):
            dataset_classes("imagenet", SMOKE)

    def test_minimum_image_size_vgg(self):
        assert minimum_image_size("vgg-16") == 32
        assert minimum_image_size("lenet-3c1l") == 8

    def test_prepare_data_loader_shapes(self):
        train, test, classes = prepare_data("cifar10", SMOKE)
        x, y = next(iter(train))
        assert x.shape[1:] == (3, SMOKE.image_size, SMOKE.image_size)
        assert classes == SMOKE.cifar10_classes
        assert len(test.dataset) == classes * SMOKE.test_samples_per_class

    def test_prepare_spec_respects_minimum_size(self):
        spec = prepare_spec("vgg-16", 10, SMOKE)
        assert spec.input_shape[1] == 32

    def test_scaled_config_inherits_paper_budgets(self):
        config = scaled_config("lenet-5", SMOKE)
        assert config.mac_budgets == (0.15, 0.30, 0.60, 0.85)
        assert config.num_iterations == SMOKE.num_iterations


class TestRunners:
    def test_table1_case_row_format(self):
        row = run_table1_case("lenet-3c1l", "cifar10", scale=SMOKE)
        assert row["network"] == "lenet-3c1l"
        assert row["dataset"] == "cifar10"
        for index in range(1, 5):
            assert 0.0 <= row[f"A{index}"] <= 1.0
            assert 0.0 < row[f"M{index}/Mt"] <= 1.0
        # MAC ratios are increasing across subnets.
        fractions = [row[f"M{index}/Mt"] for index in range(1, 5)]
        assert fractions == sorted(fractions)

    def test_figure6_case_returns_three_curves(self):
        curves = run_figure6_case("lenet-3c1l", "cifar10", scale=SMOKE)
        assert set(curves) == {"steppingnet", "any_width", "slimmable"}
        for curve in curves.values():
            assert isinstance(curve, AccuracyMacCurve)
            assert len(curve.mac_fractions) == 4

    def test_figure8_case_variants(self):
        results = run_figure8_case("lenet-3c1l", "cifar10", scale=SMOKE)
        assert set(results) == {"steppingnet", "wo_weight_suppression", "wo_knowledge_distillation"}
        for accuracies in results.values():
            assert len(accuracies) == 4

    def test_incremental_reuse_case_savings_positive(self):
        report = run_incremental_reuse_case("lenet-3c1l", "cifar10", scale=SMOKE)
        assert report["total_macs_with_reuse"] < report["total_macs_without_reuse"]
        assert 0.0 < report["savings_fraction"] < 1.0
        assert len(report["steps"]) == 4
