"""Tests for evaluation metrics and accuracy-vs-MAC curves."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    AccuracyMacCurve,
    confusion_matrix,
    monotonic_violations,
    per_class_accuracy,
    top_k_accuracy,
)


class TestTopK:
    def test_top1_matches_argmax_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.7, 0.3]])
        labels = np.array([0, 1, 1])
        assert top_k_accuracy(logits, labels, k=1) == pytest.approx(2 / 3)

    def test_top_k_equal_classes_is_one(self):
        logits = np.random.default_rng(0).standard_normal((10, 4))
        labels = np.random.default_rng(1).integers(0, 4, size=10)
        assert top_k_accuracy(logits, labels, k=4) == 1.0

    def test_k_larger_than_classes_clamped(self):
        logits = np.array([[1.0, 0.0]])
        assert top_k_accuracy(logits, np.array([1]), k=10) == 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((1, 2)), np.array([0]), k=0)


class TestConfusion:
    def test_matrix_counts(self):
        predictions = np.array([0, 1, 1, 2])
        labels = np.array([0, 1, 2, 2])
        matrix = confusion_matrix(predictions, labels, 3)
        assert matrix[0, 0] == 1
        assert matrix[2, 1] == 1
        assert matrix[2, 2] == 1
        assert matrix.sum() == 4

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.zeros(3), np.zeros(4), 2)

    def test_per_class_accuracy_handles_empty_class(self):
        accuracy = per_class_accuracy(np.array([0, 0]), np.array([0, 0]), num_classes=3)
        assert accuracy[0] == 1.0
        assert accuracy[2] == 0.0


class TestAccuracyMacCurve:
    def test_sorts_by_mac(self):
        curve = AccuracyMacCurve("m", [0.8, 0.2], [0.9, 0.5])
        assert curve.mac_fractions == [0.2, 0.8]
        assert curve.accuracies == [0.5, 0.9]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            AccuracyMacCurve("m", [0.1], [0.5, 0.6])

    def test_interpolation(self):
        curve = AccuracyMacCurve("m", [0.0, 1.0], [0.0, 1.0])
        assert curve.interpolate(0.25) == pytest.approx(0.25)

    def test_area_under_curve(self):
        curve = AccuracyMacCurve("m", [0.0, 1.0], [1.0, 1.0])
        assert curve.area_under_curve() == pytest.approx(1.0)

    def test_single_point_curve_has_zero_area(self):
        assert AccuracyMacCurve("m", [0.5], [0.7]).area_under_curve() == 0.0

    def test_dominates(self):
        better = AccuracyMacCurve("a", [0.1, 0.9], [0.6, 0.9])
        worse = AccuracyMacCurve("b", [0.1, 0.9], [0.4, 0.8])
        assert better.dominates(worse) == pytest.approx(1.0)
        assert worse.dominates(better) == pytest.approx(0.0)

    def test_dominates_disjoint_ranges(self):
        a = AccuracyMacCurve("a", [0.1, 0.2], [0.5, 0.6])
        b = AccuracyMacCurve("b", [0.8, 0.9], [0.5, 0.6])
        assert a.dominates(b) == 0.0

    def test_as_rows(self):
        rows = AccuracyMacCurve("m", [0.5], [0.7]).as_rows()
        assert rows == [{"method": "m", "mac_fraction": 0.5, "accuracy": 0.7}]


class TestMonotonicViolations:
    def test_counts_decreases(self):
        assert monotonic_violations([0.1, 0.3, 0.2, 0.4, 0.35]) == 2

    def test_tolerance_forgives_small_dips(self):
        assert monotonic_violations([0.5, 0.49], tolerance=0.02) == 0

    def test_perfectly_increasing(self):
        assert monotonic_violations([0.1, 0.2, 0.3]) == 0
