"""Tests for the multi-seed statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.statistics import (
    aggregate_curves,
    bootstrap_ci,
    paired_comparison,
    summarize,
)


class TestSummarize:
    def test_single_value(self):
        stats = summarize([0.7])
        assert stats.mean == pytest.approx(0.7)
        assert stats.std == 0.0
        assert stats.ci_low == stats.ci_high == pytest.approx(0.7)

    def test_mean_and_std(self):
        stats = summarize([0.4, 0.6])
        assert stats.mean == pytest.approx(0.5)
        assert stats.std == pytest.approx(np.std([0.4, 0.6], ddof=1))
        assert stats.count == 2

    def test_ci_contains_mean(self):
        stats = summarize([0.3, 0.5, 0.7, 0.4])
        assert stats.ci_low <= stats.mean <= stats.ci_high

    def test_higher_confidence_widens_interval(self):
        values = [0.3, 0.5, 0.7, 0.4, 0.6]
        narrow = summarize(values, confidence=0.8)
        wide = summarize(values, confidence=0.99)
        assert (wide.ci_high - wide.ci_low) > (narrow.ci_high - narrow.ci_low)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            summarize([0.5], confidence=1.0)

    def test_as_dict(self):
        assert set(summarize([0.5, 0.6]).as_dict()) == {"mean", "std", "count", "ci_low", "ci_high"}

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=12))
    def test_ci_always_brackets_mean(self, values):
        stats = summarize(values)
        assert stats.ci_low <= stats.mean + 1e-12
        assert stats.ci_high >= stats.mean - 1e-12


class TestPairedComparison:
    def test_all_wins(self):
        result = paired_comparison([0.8, 0.9], [0.5, 0.6])
        assert result.wins == 2 and result.losses == 0
        assert result.win_rate == 1.0
        assert result.mean_difference == pytest.approx(0.3)

    def test_ties_with_tolerance(self):
        result = paired_comparison([0.50, 0.52], [0.51, 0.50], tie_tolerance=0.05)
        assert result.ties == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            paired_comparison([0.5], [0.5, 0.6])

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            paired_comparison([0.5], [0.4], tie_tolerance=-0.1)

    def test_as_dict(self):
        payload = paired_comparison([0.6], [0.4]).as_dict()
        assert payload["wins"] == 1


class TestBootstrapCI:
    def test_interval_brackets_estimate(self):
        result = bootstrap_ci([0.4, 0.5, 0.6, 0.55, 0.45], seed=1)
        assert result["ci_low"] <= result["estimate"] <= result["ci_high"]

    def test_reproducible_with_seed(self):
        a = bootstrap_ci([0.4, 0.5, 0.6], seed=7)
        b = bootstrap_ci([0.4, 0.5, 0.6], seed=7)
        assert a == b

    def test_custom_statistic(self):
        result = bootstrap_ci([1.0, 2.0, 3.0], statistic=np.median, seed=0)
        assert result["estimate"] == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_invalid_resamples(self):
        with pytest.raises(ValueError):
            bootstrap_ci([0.5], num_resamples=0)


class TestAggregateCurves:
    def test_pointwise_mean(self):
        result = aggregate_curves([[0.2, 0.4], [0.4, 0.6]])
        assert result["mean"] == pytest.approx([0.3, 0.5])

    def test_min_max_envelope(self):
        result = aggregate_curves([[0.2, 0.4], [0.4, 0.6]])
        assert result["min"] == pytest.approx([0.2, 0.4])
        assert result["max"] == pytest.approx([0.4, 0.6])

    def test_single_curve_zero_std(self):
        result = aggregate_curves([[0.1, 0.2, 0.3]])
        assert result["std"] == [0.0, 0.0, 0.0]

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValueError):
            aggregate_curves([[0.1], [0.1, 0.2]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_curves([])
