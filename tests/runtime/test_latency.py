"""Tests for the latency model and per-subnet latency tables."""

import pytest

from repro.runtime.latency import (
    LatencyModel,
    deadline_feasible_subnet,
    latency_table,
    subnet_latencies,
)
from repro.runtime.platform import MOBILE_SOC, PlatformSpec, ResourceTrace


class TestLatencyModel:
    def test_latency_simple(self):
        model = LatencyModel(macs_per_second=100.0)
        assert model.latency(250.0) == pytest.approx(2.5)

    def test_latency_with_overhead(self):
        model = LatencyModel(100.0, invocation_overhead=0.1)
        assert model.latency(100.0, invocations=2) == pytest.approx(1.2)

    def test_macs_within_window(self):
        model = LatencyModel(100.0, invocation_overhead=0.1)
        assert model.macs_within(1.1, invocations=1) == pytest.approx(100.0)

    def test_macs_within_overhead_dominates(self):
        model = LatencyModel(100.0, invocation_overhead=1.0)
        assert model.macs_within(0.5) == 0.0

    def test_from_platform(self):
        model = LatencyModel.from_platform(MOBILE_SOC, "saver")
        assert model.macs_per_second == pytest.approx(MOBILE_SOC.throughput("saver"))
        assert model.invocation_overhead == MOBILE_SOC.invocation_overhead

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            LatencyModel(0.0)

    def test_negative_macs_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(10.0).latency(-1.0)


class TestSubnetLatencies:
    def test_rows_per_subnet(self, stepping_network):
        model = LatencyModel(1e6)
        rows = subnet_latencies(stepping_network, model)
        assert len(rows) == stepping_network.num_subnets

    def test_cumulative_latency_increases(self, stepping_network):
        model = LatencyModel(1e6)
        rows = subnet_latencies(stepping_network, model)
        latencies = [row["cumulative_latency"] for row in rows]
        assert latencies == sorted(latencies)

    def test_incremental_sums_to_cumulative(self, stepping_network):
        model = LatencyModel(1e6)
        rows = subnet_latencies(stepping_network, model)
        total_incremental_macs = sum(row["incremental_macs"] for row in rows)
        assert total_incremental_macs == pytest.approx(rows[-1]["macs"])


class TestLatencyTable:
    def test_covers_all_modes(self, stepping_network):
        table = latency_table(stepping_network, MOBILE_SOC)
        modes = {row["mode"] for row in table}
        assert modes == set(MOBILE_SOC.power_modes)

    def test_platform_without_modes_uses_peak(self, stepping_network):
        platform = PlatformSpec("bare", 1e6)
        table = latency_table(stepping_network, platform)
        assert {row["mode"] for row in table} == {"peak"}


class TestDeadlineFeasibleSubnet:
    def test_generous_deadline_allows_largest(self, stepping_network):
        trace = ResourceTrace.constant(1e12)
        feasible = deadline_feasible_subnet(stepping_network, trace, 0.0, deadline=10.0)
        assert feasible == stepping_network.num_subnets - 1

    def test_impossible_deadline(self, stepping_network):
        trace = ResourceTrace.constant(1.0)
        feasible = deadline_feasible_subnet(stepping_network, trace, 0.0, deadline=1e-9)
        assert feasible == -1

    def test_intermediate_budget_selects_partial_subnet(self, stepping_network):
        macs_small = stepping_network.subnet_macs(0)
        macs_large = stepping_network.subnet_macs(stepping_network.num_subnets - 1)
        # Rate chosen so only the two smallest subnets fit in one second.
        rate = (stepping_network.subnet_macs(1) + macs_small) / 2.0
        trace = ResourceTrace.constant(rate)
        feasible = deadline_feasible_subnet(stepping_network, trace, 0.0, deadline=1.0)
        assert 0 <= feasible < stepping_network.num_subnets - 1 or macs_large <= rate

    def test_invalid_deadline_rejected(self, stepping_network):
        trace = ResourceTrace.constant(1e6)
        with pytest.raises(ValueError):
            deadline_feasible_subnet(stepping_network, trace, 1.0, deadline=0.5)
