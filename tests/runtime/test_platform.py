"""Tests for platform specs and piecewise-constant resource traces."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.platform import (
    EMBEDDED_MCU,
    MOBILE_SOC,
    VEHICLE_ECU,
    PlatformSpec,
    ResourcePhase,
    ResourceTrace,
)


class TestPlatformSpec:
    def test_throughput_peak(self):
        platform = PlatformSpec("p", peak_macs_per_second=1e6)
        assert platform.throughput() == 1e6

    def test_throughput_mode(self):
        platform = PlatformSpec("p", 1e6, power_modes={"saver": 0.25})
        assert platform.throughput("saver") == pytest.approx(2.5e5)

    def test_unknown_mode_raises(self):
        platform = PlatformSpec("p", 1e6, power_modes={"saver": 0.25})
        with pytest.raises(KeyError):
            platform.throughput("turbo")

    def test_invalid_peak_rejected(self):
        with pytest.raises(ValueError):
            PlatformSpec("p", 0.0)

    def test_invalid_overhead_rejected(self):
        with pytest.raises(ValueError):
            PlatformSpec("p", 1e6, invocation_overhead=-1.0)

    def test_invalid_mode_fraction_rejected(self):
        with pytest.raises(ValueError):
            PlatformSpec("p", 1e6, power_modes={"broken": 1.5})

    @pytest.mark.parametrize("platform", [MOBILE_SOC, VEHICLE_ECU, EMBEDDED_MCU])
    def test_predefined_platforms_are_valid(self, platform):
        assert platform.peak_macs_per_second > 0
        for mode in platform.power_modes:
            assert 0 < platform.throughput(mode) <= platform.peak_macs_per_second


class TestResourcePhase:
    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            ResourcePhase(-1.0, 10.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ResourcePhase(0.0, -5.0)


class TestResourceTrace:
    def test_requires_at_least_one_phase(self):
        with pytest.raises(ValueError):
            ResourceTrace([])

    def test_duplicate_start_times_rejected(self):
        with pytest.raises(ValueError):
            ResourceTrace([ResourcePhase(0.0, 1.0), ResourcePhase(0.0, 2.0)])

    def test_phases_sorted_on_construction(self):
        trace = ResourceTrace([ResourcePhase(5.0, 2.0), ResourcePhase(0.0, 1.0)])
        assert trace.boundaries() == [0.0, 5.0]

    def test_constant_trace_throughput(self):
        trace = ResourceTrace.constant(100.0)
        assert trace.throughput_at(0.0) == 100.0
        assert trace.throughput_at(1e9) == 100.0

    def test_throughput_before_first_phase_is_zero(self):
        trace = ResourceTrace([ResourcePhase(2.0, 100.0)])
        assert trace.throughput_at(1.0) == 0.0
        assert trace.throughput_at(2.0) == 100.0

    def test_throughput_switches_at_boundary(self):
        trace = ResourceTrace.from_pairs([(0.0, 100.0), (1.0, 50.0)])
        assert trace.throughput_at(0.5) == 100.0
        assert trace.throughput_at(1.0) == 50.0
        assert trace.throughput_at(10.0) == 50.0

    def test_phase_at_returns_governing_phase(self):
        trace = ResourceTrace.from_pairs([(0.0, 100.0), (1.0, 50.0)])
        assert trace.phase_at(0.2).macs_per_second == 100.0
        assert trace.phase_at(3.0).macs_per_second == 50.0

    def test_available_macs_constant(self):
        trace = ResourceTrace.constant(10.0)
        assert trace.available_macs(0.0, 2.0) == pytest.approx(20.0)

    def test_available_macs_across_phase_change(self):
        trace = ResourceTrace.from_pairs([(0.0, 10.0), (1.0, 2.0)])
        assert trace.available_macs(0.0, 2.0) == pytest.approx(12.0)

    def test_available_macs_empty_window(self):
        trace = ResourceTrace.constant(10.0)
        assert trace.available_macs(1.0, 1.0) == 0.0

    def test_available_macs_invalid_window_rejected(self):
        trace = ResourceTrace.constant(10.0)
        with pytest.raises(ValueError):
            trace.available_macs(2.0, 1.0)

    def test_time_to_execute_constant(self):
        trace = ResourceTrace.constant(10.0)
        assert trace.time_to_execute(25.0, 0.0) == pytest.approx(2.5)

    def test_time_to_execute_with_offset(self):
        trace = ResourceTrace.constant(10.0)
        assert trace.time_to_execute(10.0, 3.0) == pytest.approx(4.0)

    def test_time_to_execute_across_phase_change(self):
        trace = ResourceTrace.from_pairs([(0.0, 10.0), (1.0, 5.0)])
        # 10 MACs in the first second, the remaining 5 at 5 MAC/s.
        assert trace.time_to_execute(15.0, 0.0) == pytest.approx(2.0)

    def test_time_to_execute_zero_work(self):
        trace = ResourceTrace.constant(10.0)
        assert trace.time_to_execute(0.0, 7.0) == 7.0

    def test_time_to_execute_negative_rejected(self):
        trace = ResourceTrace.constant(10.0)
        with pytest.raises(ValueError):
            trace.time_to_execute(-1.0, 0.0)

    def test_time_to_execute_infinite_when_no_throughput(self):
        trace = ResourceTrace.from_pairs([(0.0, 10.0), (1.0, 0.0)])
        assert math.isinf(trace.time_to_execute(100.0, 0.0))

    def test_time_skips_zero_rate_phase(self):
        trace = ResourceTrace.from_pairs([(0.0, 0.0), (1.0, 10.0)])
        assert trace.time_to_execute(10.0, 0.0) == pytest.approx(2.0)

    def test_scaled(self):
        trace = ResourceTrace.constant(10.0).scaled(2.0)
        assert trace.throughput_at(0.0) == 20.0

    def test_scaled_invalid_factor(self):
        with pytest.raises(ValueError):
            ResourceTrace.constant(10.0).scaled(0.0)

    def test_shifted(self):
        trace = ResourceTrace.from_pairs([(0.0, 10.0), (2.0, 5.0)]).shifted(1.0)
        assert trace.throughput_at(0.5) == 0.0 or trace.throughput_at(1.0) == 10.0
        assert trace.throughput_at(3.5) == 5.0

    def test_mean_throughput(self):
        trace = ResourceTrace.from_pairs([(0.0, 10.0), (1.0, 0.0)])
        assert trace.mean_throughput(0.0, 2.0) == pytest.approx(5.0)

    def test_len(self):
        assert len(ResourceTrace.from_pairs([(0.0, 1.0), (1.0, 2.0)])) == 2


# ----------------------------------------------------------------------
# Property-based invariants
# ----------------------------------------------------------------------
rates = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)


@st.composite
def traces(draw):
    count = draw(st.integers(min_value=1, max_value=6))
    starts = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
    )
    phase_rates = draw(st.lists(rates, min_size=count, max_size=count))
    return ResourceTrace(
        [ResourcePhase(start, rate) for start, rate in zip(starts, phase_rates)]
    )


@settings(max_examples=50, deadline=None)
@given(trace=traces(), split=st.floats(min_value=0.0, max_value=1.0), t0=st.floats(0, 50), span=st.floats(0, 50))
def test_available_macs_is_additive_over_subintervals(trace, split, t0, span):
    """MACs over [t0, t1] equal the sum over any split of the interval."""
    t1 = t0 + span
    mid = t0 + split * span
    total = trace.available_macs(t0, t1)
    parts = trace.available_macs(t0, mid) + trace.available_macs(mid, t1)
    assert total == pytest.approx(parts, rel=1e-9, abs=1e-6)


@settings(max_examples=50, deadline=None)
@given(trace=traces(), macs=st.floats(min_value=0.0, max_value=1e6), start=st.floats(0, 50))
def test_time_to_execute_consistent_with_available_macs(trace, macs, start):
    """The work finished at the returned time is at least the requested work."""
    finish = trace.time_to_execute(macs, start)
    if math.isinf(finish):
        total = trace.available_macs(start, start + 1e6)
        assert total < macs or macs == 0
    else:
        assert finish >= start
        delivered = trace.available_macs(start, finish)
        assert delivered == pytest.approx(macs, rel=1e-6, abs=1e-6) or delivered >= macs


@settings(max_examples=30, deadline=None)
@given(trace=traces(), t=st.floats(min_value=0.0, max_value=200.0))
def test_throughput_is_non_negative(trace, t):
    assert trace.throughput_at(t) >= 0.0
