"""Tests for the anytime executors (reuse vs recompute)."""

import math

import numpy as np
import pytest

from repro.runtime.executor import AnytimeExecutor, ExecutionRecord, RecomputeExecutor, StepRecord
from repro.runtime.platform import ResourceTrace
from repro.runtime.policies import ConfidencePolicy, FixedSubnetPolicy, GreedyPolicy


@pytest.fixture
def inputs(image_batch):
    images, _ = image_batch
    return images[:4]


@pytest.fixture
def fast_trace():
    return ResourceTrace.constant(1e12)


class TestAnytimeExecutor:
    def test_reaches_largest_subnet_with_generous_resources(self, stepping_network, inputs, fast_trace):
        executor = AnytimeExecutor(stepping_network, fast_trace, GreedyPolicy())
        record = executor.execute(inputs, deadline=100.0)
        assert record.final_subnet == stepping_network.num_subnets - 1
        assert len(record.steps) == stepping_network.num_subnets

    def test_total_macs_equal_largest_subnet(self, stepping_network, inputs, fast_trace):
        executor = AnytimeExecutor(stepping_network, fast_trace, GreedyPolicy())
        record = executor.execute(inputs, deadline=100.0)
        assert record.total_macs_executed == pytest.approx(
            stepping_network.subnet_macs(stepping_network.num_subnets - 1)
        )

    def test_logits_match_direct_forward(self, stepping_network, inputs, fast_trace):
        executor = AnytimeExecutor(stepping_network, fast_trace, GreedyPolicy())
        record = executor.execute(inputs, deadline=100.0)
        stepping_network.eval()
        direct = stepping_network.forward(inputs, subnet=stepping_network.num_subnets - 1)
        np.testing.assert_allclose(record.final_logits, direct.data, rtol=1e-8, atol=1e-8)

    def test_deadline_limits_stepping(self, stepping_network, inputs):
        macs_first = stepping_network.subnet_macs(0)
        # Rate such that the first subnet takes exactly 1s; deadline allows little more.
        trace = ResourceTrace.constant(float(macs_first))
        executor = AnytimeExecutor(stepping_network, trace, GreedyPolicy())
        record = executor.execute(inputs, deadline=1.5)
        assert record.final_subnet < stepping_network.num_subnets - 1
        assert record.deadline_met

    def test_zero_throughput_reports_infinite_finish(self, stepping_network, inputs):
        trace = ResourceTrace.constant(0.0)
        executor = AnytimeExecutor(stepping_network, trace, GreedyPolicy())
        record = executor.execute(inputs, deadline=1.0)
        assert math.isinf(record.finish_time)
        assert not record.deadline_met

    def test_confidence_policy_may_stop_early(self, stepping_network, inputs, fast_trace):
        executor = AnytimeExecutor(
            stepping_network, fast_trace, ConfidencePolicy(threshold=1e-6)
        )
        record = executor.execute(inputs, deadline=100.0)
        assert record.final_subnet == 0
        assert "confident" in record.stop_reason

    def test_fixed_policy_stops_at_level(self, stepping_network, inputs, fast_trace):
        executor = AnytimeExecutor(stepping_network, fast_trace, FixedSubnetPolicy(subnet=1))
        record = executor.execute(inputs, deadline=100.0)
        assert record.final_subnet == 1

    def test_reuse_recorded_for_later_steps(self, stepping_network, inputs, fast_trace):
        executor = AnytimeExecutor(stepping_network, fast_trace, GreedyPolicy())
        record = executor.execute(inputs, deadline=100.0)
        assert record.steps[0].macs_reused == 0.0
        assert all(step.macs_reused > 0 for step in record.steps[1:])

    def test_overhead_charged_per_step(self, stepping_network, inputs, fast_trace):
        executor = AnytimeExecutor(
            stepping_network, fast_trace, GreedyPolicy(), overhead_per_step=0.25
        )
        record = executor.execute(inputs, deadline=100.0)
        assert record.finish_time >= 0.25 * len(record.steps)

    def test_negative_overhead_rejected(self, stepping_network, fast_trace):
        with pytest.raises(ValueError):
            AnytimeExecutor(stepping_network, fast_trace, overhead_per_step=-0.1)

    def test_start_subnet(self, stepping_network, inputs, fast_trace):
        executor = AnytimeExecutor(stepping_network, fast_trace, FixedSubnetPolicy(subnet=1))
        record = executor.execute(inputs, deadline=100.0, start_subnet=1)
        assert record.steps[0].subnet == 1

    def test_subnet_completed_by(self, stepping_network, inputs):
        macs_first = stepping_network.subnet_macs(0)
        trace = ResourceTrace.constant(float(macs_first))
        executor = AnytimeExecutor(stepping_network, trace, GreedyPolicy())
        record = executor.execute(inputs, deadline=50.0)
        assert record.subnet_completed_by(0.0) == -1
        assert record.subnet_completed_by(record.finish_time) == record.final_subnet


class TestRecomputeExecutor:
    def test_charges_full_macs_per_step(self, stepping_network, inputs, fast_trace):
        executor = RecomputeExecutor(stepping_network, fast_trace, GreedyPolicy())
        record = executor.execute(inputs, deadline=100.0)
        expected = sum(
            stepping_network.subnet_macs(i) for i in range(stepping_network.num_subnets)
        )
        assert record.total_macs_executed == pytest.approx(expected)
        assert record.total_macs_reused == 0.0

    def test_more_expensive_than_reuse(self, stepping_network, inputs, fast_trace):
        reuse = AnytimeExecutor(stepping_network, fast_trace, GreedyPolicy()).execute(
            inputs, deadline=100.0
        )
        recompute = RecomputeExecutor(stepping_network, fast_trace, GreedyPolicy()).execute(
            inputs, deadline=100.0
        )
        assert recompute.total_macs_executed > reuse.total_macs_executed

    def test_same_final_logits_as_reuse(self, stepping_network, inputs, fast_trace):
        reuse = AnytimeExecutor(stepping_network, fast_trace, GreedyPolicy()).execute(
            inputs, deadline=100.0
        )
        recompute = RecomputeExecutor(stepping_network, fast_trace, GreedyPolicy()).execute(
            inputs, deadline=100.0
        )
        np.testing.assert_allclose(reuse.final_logits, recompute.final_logits, rtol=1e-8)

    def test_reaches_fewer_levels_under_tight_budget(self, stepping_network, inputs):
        # A budget that lets the reuse executor finish all levels but the
        # recompute executor pay for each level from scratch.
        largest = stepping_network.subnet_macs(stepping_network.num_subnets - 1)
        trace = ResourceTrace.constant(float(largest))
        deadline = 1.05  # just enough for ~1x the largest subnet's MACs
        reuse = AnytimeExecutor(stepping_network, trace, GreedyPolicy()).execute(
            inputs, deadline=deadline
        )
        recompute = RecomputeExecutor(stepping_network, trace, GreedyPolicy()).execute(
            inputs, deadline=deadline
        )
        assert reuse.final_subnet >= recompute.final_subnet


def _step(finish_time, subnet=0, start_time=0.0):
    return StepRecord(
        subnet=subnet,
        start_time=start_time,
        finish_time=finish_time,
        macs_executed=1.0,
        macs_reused=0.0,
        confidence=1.0,
        met_deadline=True,
    )


class TestDeadlineMetSemantics:
    """Regression tests for the tightened ``ExecutionRecord.deadline_met``.

    The mandatory first step must have *completed* (finite finish time)
    at or before the deadline; later optional refinements that overrun do
    not revoke it, and an empty or never-finishing execution never meets
    a deadline.
    """

    def test_empty_record_with_deadline(self):
        assert not ExecutionRecord(deadline=1.0).deadline_met

    def test_empty_record_without_deadline(self):
        assert not ExecutionRecord().deadline_met

    def test_exact_boundary_counts_as_met(self):
        record = ExecutionRecord(deadline=1.0, steps=[_step(finish_time=1.0)])
        assert record.deadline_met

    def test_just_past_boundary_misses(self):
        record = ExecutionRecord(deadline=1.0, steps=[_step(finish_time=1.0 + 1e-9)])
        assert not record.deadline_met

    def test_overrunning_refinement_does_not_revoke(self):
        record = ExecutionRecord(
            deadline=1.0,
            steps=[_step(finish_time=0.5), _step(finish_time=2.0, subnet=1, start_time=0.5)],
        )
        assert record.deadline_met

    def test_infinite_first_step_never_met_without_deadline(self):
        record = ExecutionRecord(steps=[_step(finish_time=math.inf)])
        assert not record.deadline_met

    def test_finite_first_step_met_without_deadline(self):
        record = ExecutionRecord(steps=[_step(finish_time=3.0)])
        assert record.deadline_met

    def test_executor_zero_throughput(self, stepping_network, inputs):
        trace = ResourceTrace.constant(0.0)
        record = AnytimeExecutor(stepping_network, trace, GreedyPolicy()).execute(
            inputs, deadline=1.0
        )
        assert not record.deadline_met


class TestBackendUnification:
    """The executors are drivers over the serving backends."""

    def test_executor_exposes_backend(self, stepping_network, fast_trace):
        from repro.serving.backend import RecomputeBackend, SteppingBackend

        assert isinstance(
            AnytimeExecutor(stepping_network, fast_trace).backend, SteppingBackend
        )
        assert isinstance(
            RecomputeExecutor(stepping_network, fast_trace).backend, RecomputeBackend
        )

    def test_from_backend_shares_policy_and_network(self, stepping_network, fast_trace):
        from repro.serving.backend import SteppingBackend

        backend = SteppingBackend(stepping_network, policy=FixedSubnetPolicy(subnet=1))
        executor = AnytimeExecutor.from_backend(backend, fast_trace)
        record = executor.execute(np.zeros((2, 3, 12, 12)), deadline=100.0)
        assert record.final_subnet == 1
        assert executor.network is stepping_network
