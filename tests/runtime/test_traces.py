"""Tests for the resource-trace generators."""

import pytest

from repro.runtime.platform import MOBILE_SOC
from repro.runtime.traces import (
    bursty_trace,
    constant_trace,
    duty_cycle_trace,
    peak_to_seconds,
    power_mode_switch_trace,
    ramp_trace,
    trace_library,
)


class TestConstantTrace:
    def test_rate(self):
        trace = constant_trace(123.0)
        assert trace.throughput_at(0.0) == 123.0
        assert len(trace) == 1


class TestPowerModeSwitch:
    def test_switches_to_low_mode(self):
        trace = power_mode_switch_trace(MOBILE_SOC, "normal", "saver", switch_time=1.0)
        assert trace.throughput_at(0.5) == MOBILE_SOC.throughput("normal")
        assert trace.throughput_at(1.5) == MOBILE_SOC.throughput("saver")

    def test_recovers(self):
        trace = power_mode_switch_trace(
            MOBILE_SOC, "normal", "saver", switch_time=1.0, recover_time=2.0
        )
        assert trace.throughput_at(3.0) == MOBILE_SOC.throughput("normal")

    def test_invalid_switch_time(self):
        with pytest.raises(ValueError):
            power_mode_switch_trace(MOBILE_SOC, "normal", "saver", switch_time=0.0)

    def test_invalid_recover_time(self):
        with pytest.raises(ValueError):
            power_mode_switch_trace(
                MOBILE_SOC, "normal", "saver", switch_time=2.0, recover_time=1.0
            )


class TestDutyCycle:
    def test_alternates(self):
        trace = duty_cycle_trace(100.0, 10.0, period=1.0, duty=0.5, cycles=3)
        assert trace.throughput_at(0.25) == 100.0
        assert trace.throughput_at(0.75) == 10.0
        assert trace.throughput_at(1.25) == 100.0

    def test_phase_count(self):
        trace = duty_cycle_trace(100.0, 10.0, period=1.0, cycles=4)
        assert len(trace) == 8

    @pytest.mark.parametrize("kwargs", [
        {"period": 0.0},
        {"duty": 0.0},
        {"duty": 1.0},
        {"cycles": 0},
    ])
    def test_invalid_arguments(self, kwargs):
        defaults = {"period": 1.0, "duty": 0.5, "cycles": 2}
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            duty_cycle_trace(100.0, 10.0, **defaults)


class TestBurstyTrace:
    def test_rates_limited_to_base_and_burst(self):
        trace = bursty_trace(100.0, 20.0, duration=10.0, mean_burst_length=1.0, seed=1)
        rates = {phase.macs_per_second for phase in trace.phases}
        assert rates <= {100.0, 20.0}

    def test_reproducible_with_seed(self):
        a = bursty_trace(100.0, 20.0, duration=10.0, mean_burst_length=1.0, seed=3)
        b = bursty_trace(100.0, 20.0, duration=10.0, mean_burst_length=1.0, seed=3)
        assert [p.start_time for p in a.phases] == [p.start_time for p in b.phases]

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            bursty_trace(100.0, 20.0, duration=0.0, mean_burst_length=1.0)

    def test_invalid_burst_fraction(self):
        with pytest.raises(ValueError):
            bursty_trace(100.0, 20.0, duration=5.0, mean_burst_length=1.0, burst_fraction=1.5)


class TestRampTrace:
    def test_monotone_rates(self):
        trace = ramp_trace(10.0, 100.0, duration=4.0, steps=5)
        rates = [phase.macs_per_second for phase in trace.phases]
        assert rates == sorted(rates)
        assert len(trace) == 5

    def test_descending_ramp(self):
        trace = ramp_trace(100.0, 10.0, duration=4.0, steps=4)
        rates = [phase.macs_per_second for phase in trace.phases]
        assert rates == sorted(rates, reverse=True)

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            ramp_trace(1.0, 2.0, duration=1.0, steps=0)


class TestTraceLibrary:
    def test_contains_expected_scenarios(self):
        library = trace_library(MOBILE_SOC, seed=0)
        assert {"steady-high", "steady-low", "power-switch", "duty-cycle", "bursty"} <= set(library)

    def test_steady_low_is_slower(self):
        library = trace_library(MOBILE_SOC, seed=0)
        assert library["steady-low"].throughput_at(0.0) < library["steady-high"].throughput_at(0.0)


def test_peak_to_seconds_scaling():
    assert peak_to_seconds(1e6, reference_macs=1e6) == pytest.approx(1.0)
    assert peak_to_seconds(2e6, reference_macs=1e6) == pytest.approx(0.5)


def test_peak_to_seconds_invalid():
    with pytest.raises(ValueError):
        peak_to_seconds(0.0)
