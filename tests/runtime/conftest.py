"""Runtime-test fixtures.

The root ``stepping_network`` fixture is a freshly initialised network in
which every unit still belongs to the smallest subnet (that is how
construction starts), so all subnets have identical MAC counts.  The
runtime package is about the *differences* between subnet levels, so the
fixture is overridden here with calibrated nested prefix assignments —
four genuinely distinct subnet sizes — without running the (slow)
construction flow.
"""

import numpy as np
import pytest

from repro.baselines.common import set_prefix_assignments
from repro.core import SteppingNetwork


@pytest.fixture
def stepping_network(tiny_spec, rng):
    network = SteppingNetwork(tiny_spec.expand(1.5), num_subnets=4, rng=rng)
    set_prefix_assignments(network, [0.25, 0.5, 0.75, 1.0])
    network.assignment.validate()
    return network
