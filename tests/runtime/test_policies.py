"""Tests for the step-up decision policies."""

import numpy as np
import pytest

from repro.runtime.policies import (
    ConfidencePolicy,
    DeadlineAwarePolicy,
    FixedSubnetPolicy,
    GreedyPolicy,
    PolicyState,
    prediction_confidence,
    prediction_entropy,
    softmax,
)


def make_state(
    current_subnet=0,
    num_subnets=4,
    logits=None,
    current_time=0.0,
    deadline=10.0,
    next_step_macs=100.0,
    estimated_finish_time=1.0,
):
    if logits is None:
        logits = np.array([[4.0, 0.0, 0.0], [3.0, 0.5, 0.5]])
    return PolicyState(
        current_subnet=current_subnet,
        num_subnets=num_subnets,
        logits=logits,
        current_time=current_time,
        deadline=deadline,
        next_step_macs=next_step_macs,
        estimated_finish_time=estimated_finish_time,
    )


class TestHelpers:
    def test_softmax_rows_sum_to_one(self):
        probs = softmax(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0)

    def test_softmax_handles_large_logits(self):
        probs = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probs).all()

    def test_confidence_between_zero_and_one(self):
        assert 0.0 < prediction_confidence(np.array([[1.0, 0.5, 0.2]])) <= 1.0

    def test_uniform_logits_have_max_entropy(self):
        uniform = prediction_entropy(np.zeros((1, 4)))
        peaked = prediction_entropy(np.array([[10.0, 0.0, 0.0, 0.0]]))
        assert uniform > peaked
        assert uniform == pytest.approx(np.log(4), rel=1e-6)


class TestPolicyState:
    def test_has_larger_subnet(self):
        assert make_state(current_subnet=0).has_larger_subnet
        assert not make_state(current_subnet=3).has_larger_subnet

    def test_time_remaining(self):
        state = make_state(current_time=2.0, deadline=10.0)
        assert state.time_remaining == pytest.approx(8.0)

    def test_time_remaining_without_deadline(self):
        assert make_state(deadline=None).time_remaining == float("inf")


class TestGreedyPolicy:
    def test_steps_when_possible(self):
        assert GreedyPolicy().decide(make_state()).step_up

    def test_stops_at_largest(self):
        decision = GreedyPolicy().decide(make_state(current_subnet=3))
        assert not decision.step_up

    def test_stops_when_missing_deadline(self):
        state = make_state(estimated_finish_time=20.0, deadline=10.0)
        assert not GreedyPolicy().decide(state).step_up

    def test_no_deadline_always_steps(self):
        state = make_state(deadline=None, estimated_finish_time=1e9)
        assert GreedyPolicy().decide(state).step_up


class TestConfidencePolicy:
    def test_stops_when_confident(self):
        confident = np.array([[20.0, 0.0, 0.0]])
        state = make_state(logits=confident)
        assert not ConfidencePolicy(threshold=0.9).decide(state).step_up

    def test_steps_when_uncertain(self):
        uncertain = np.zeros((2, 3))
        state = make_state(logits=uncertain)
        assert ConfidencePolicy(threshold=0.9).decide(state).step_up

    def test_respects_deadline(self):
        uncertain = np.zeros((2, 3))
        state = make_state(logits=uncertain, estimated_finish_time=20.0, deadline=10.0)
        assert not ConfidencePolicy(threshold=0.9).decide(state).step_up

    def test_deadline_ignored_when_disabled(self):
        uncertain = np.zeros((2, 3))
        state = make_state(logits=uncertain, estimated_finish_time=20.0, deadline=10.0)
        policy = ConfidencePolicy(threshold=0.9, respect_deadline=False)
        assert policy.decide(state).step_up

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ConfidencePolicy(threshold=0.0)


class TestDeadlineAwarePolicy:
    def test_steps_with_margin_available(self):
        state = make_state(estimated_finish_time=5.0, deadline=10.0)
        assert DeadlineAwarePolicy(margin=0.1).decide(state).step_up

    def test_stops_when_margin_violated(self):
        state = make_state(estimated_finish_time=9.5, deadline=10.0)
        assert not DeadlineAwarePolicy(margin=0.2).decide(state).step_up

    def test_no_deadline_keeps_refining(self):
        state = make_state(deadline=None)
        assert DeadlineAwarePolicy().decide(state).step_up

    def test_invalid_margin(self):
        with pytest.raises(ValueError):
            DeadlineAwarePolicy(margin=1.0)


class TestFixedSubnetPolicy:
    def test_stops_at_fixed_level(self):
        assert not FixedSubnetPolicy(subnet=0).decide(make_state(current_subnet=0)).step_up

    def test_steps_below_fixed_level(self):
        assert FixedSubnetPolicy(subnet=2).decide(make_state(current_subnet=0)).step_up

    def test_respects_deadline(self):
        state = make_state(current_subnet=0, estimated_finish_time=20.0, deadline=10.0)
        assert not FixedSubnetPolicy(subnet=2).decide(state).step_up

    def test_invalid_subnet(self):
        with pytest.raises(ValueError):
            FixedSubnetPolicy(subnet=-1)
