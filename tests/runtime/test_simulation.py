"""Tests for the frame-stream simulation."""

import numpy as np
import pytest

from repro.runtime.executor import AnytimeExecutor, RecomputeExecutor
from repro.runtime.platform import ResourceTrace
from repro.runtime.policies import GreedyPolicy
from repro.runtime.simulation import (
    InferenceRequest,
    compare_executors,
    periodic_requests,
    simulate_stream,
)


@pytest.fixture
def images_and_labels(image_dataset):
    images = np.stack([image_dataset[i][0] for i in range(12)])
    labels = np.array([image_dataset[i][1] for i in range(12)])
    return images, labels


@pytest.fixture
def fast_trace():
    return ResourceTrace.constant(1e12)


class TestInferenceRequest:
    def test_deadline_must_follow_arrival(self):
        with pytest.raises(ValueError):
            InferenceRequest(arrival_time=1.0, deadline=1.0, inputs=np.zeros((1, 3, 4, 4)))


class TestPeriodicRequests:
    def test_frame_count(self, images_and_labels):
        images, labels = images_and_labels
        requests = periodic_requests(images, labels, frame_period=0.1, relative_deadline=0.05, batch_size=4)
        assert len(requests) == 3

    def test_arrival_times_are_periodic(self, images_and_labels):
        images, labels = images_and_labels
        requests = periodic_requests(images, labels, frame_period=0.5, relative_deadline=0.1, batch_size=4)
        arrivals = [r.arrival_time for r in requests]
        assert arrivals == pytest.approx([0.0, 0.5, 1.0])

    def test_labels_partitioned_with_inputs(self, images_and_labels):
        images, labels = images_and_labels
        requests = periodic_requests(images, labels, frame_period=0.1, relative_deadline=0.05, batch_size=5)
        assert sum(len(r.labels) for r in requests) == len(labels)
        assert all(len(r.labels) == len(r.inputs) for r in requests)

    def test_without_labels(self, images_and_labels):
        images, _ = images_and_labels
        requests = periodic_requests(images, None, frame_period=0.1, relative_deadline=0.05, batch_size=4)
        assert all(r.labels is None for r in requests)

    @pytest.mark.parametrize("kwargs", [
        {"frame_period": 0.0},
        {"relative_deadline": 0.0},
        {"batch_size": 0},
    ])
    def test_invalid_arguments(self, images_and_labels, kwargs):
        images, labels = images_and_labels
        defaults = {"frame_period": 0.1, "relative_deadline": 0.1, "batch_size": 4}
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            periodic_requests(images, labels, **defaults)


class TestSimulateStream:
    def test_all_frames_processed(self, stepping_network, images_and_labels, fast_trace):
        images, labels = images_and_labels
        requests = periodic_requests(images, labels, frame_period=1.0, relative_deadline=0.5, batch_size=4)
        executor = AnytimeExecutor(stepping_network, fast_trace, GreedyPolicy())
        summary = simulate_stream(executor, requests)
        assert summary.num_frames == len(requests)

    def test_generous_resources_reach_largest_subnet(self, stepping_network, images_and_labels, fast_trace):
        images, labels = images_and_labels
        requests = periodic_requests(images, labels, frame_period=1.0, relative_deadline=0.5, batch_size=4)
        executor = AnytimeExecutor(stepping_network, fast_trace, GreedyPolicy())
        summary = simulate_stream(executor, requests)
        assert summary.deadline_miss_rate == 0.0
        assert summary.mean_subnet_at_deadline == pytest.approx(stepping_network.num_subnets - 1)

    def test_starved_platform_misses_deadlines(self, stepping_network, images_and_labels):
        images, labels = images_and_labels
        requests = periodic_requests(images, labels, frame_period=1.0, relative_deadline=0.5, batch_size=4)
        executor = AnytimeExecutor(stepping_network, ResourceTrace.constant(1.0), GreedyPolicy())
        summary = simulate_stream(executor, requests)
        assert summary.deadline_miss_rate == 1.0
        assert summary.mean_subnet_at_deadline == -1.0

    def test_accuracy_fields_populated_with_labels(self, stepping_network, images_and_labels, fast_trace):
        images, labels = images_and_labels
        requests = periodic_requests(images, labels, frame_period=1.0, relative_deadline=0.5, batch_size=4)
        executor = AnytimeExecutor(stepping_network, fast_trace, GreedyPolicy())
        summary = simulate_stream(executor, requests)
        assert 0.0 <= summary.mean_final_accuracy <= 1.0
        assert 0.0 <= summary.mean_accuracy_at_deadline <= 1.0

    def test_head_of_line_blocking(self, stepping_network, images_and_labels):
        """A slow frame delays the start of the next frame."""
        images, labels = images_and_labels
        macs_first = stepping_network.subnet_macs(0)
        trace = ResourceTrace.constant(float(macs_first))  # 1s per smallest subnet
        requests = periodic_requests(images, labels, frame_period=0.1, relative_deadline=5.0, batch_size=4)
        executor = AnytimeExecutor(stepping_network, trace, GreedyPolicy())
        summary = simulate_stream(executor, requests)
        starts = [frame.record.steps[0].start_time for frame in summary.frames]
        assert starts == sorted(starts)
        assert starts[1] >= summary.frames[0].record.finish_time - 1e-9

    def test_as_dict_keys(self, stepping_network, images_and_labels, fast_trace):
        images, labels = images_and_labels
        requests = periodic_requests(images, labels, frame_period=1.0, relative_deadline=0.5, batch_size=6)
        executor = AnytimeExecutor(stepping_network, fast_trace, GreedyPolicy())
        summary = simulate_stream(executor, requests)
        payload = summary.as_dict()
        assert {"num_frames", "deadline_miss_rate", "mean_final_accuracy", "mean_macs_per_frame"} <= set(payload)


class TestCompareExecutors:
    def test_reuse_saves_macs(self, stepping_network, images_and_labels, fast_trace):
        images, labels = images_and_labels
        requests = periodic_requests(images, labels, frame_period=1.0, relative_deadline=0.5, batch_size=4)
        summaries = compare_executors(
            {
                "steppingnet": AnytimeExecutor(stepping_network, fast_trace, GreedyPolicy()),
                "recompute": RecomputeExecutor(stepping_network, fast_trace, GreedyPolicy()),
            },
            requests,
        )
        assert summaries["steppingnet"].total_macs < summaries["recompute"].total_macs
        assert summaries["steppingnet"].total_macs_reused > 0.0

    def test_empty_summary_defaults(self):
        from repro.runtime.simulation import SimulationSummary

        summary = SimulationSummary()
        assert summary.num_frames == 0
        assert summary.deadline_miss_rate == 0.0
        assert np.isnan(summary.mean_final_accuracy)
